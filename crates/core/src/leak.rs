//! Leak recording and the §6.1 residual-leak scanner.
//!
//! "Our best defense against textual attacks is an iterative methodology.
//! After anonymizing configs, we highlight for a human operator lines
//! that seem likely to leak information. … As an example of a
//! leak-highlighting method, the anonymizer can record all AS numbers it
//! sees before hashing them, and then grep out all lines from the
//! anonymized configs that still include any of those numbers."
//!
//! The scanner matches *whole* numbers and *whole* dotted quads (the
//! paper's plain `grep` would flag AS 1 inside unrelated integers — its
//! own Genuity footnote — so we tokenize first). Because the ASN map is a
//! permutation over a shared space, a legitimate image may coincide with
//! a recorded original; callers that know the mapping can pass the image
//! set to [`LeakScanner::scan_excluding`] to suppress those
//! false positives, which is exactly what the human reviewer of §6.1 does
//! with context.

use std::collections::{BTreeSet, HashSet};

use confanon_testkit::json::Json;

/// Everything the anonymizer saw that must not appear in the output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeakRecord {
    /// Public ASNs located by the 12 locator rules, as decimal strings.
    pub asns: BTreeSet<String>,
    /// IPv4 literals mapped (ordinary addresses only; specials are
    /// expected to survive).
    pub ips: BTreeSet<String>,
    /// Identity words hashed whole (hostnames, domains, secrets).
    pub words: BTreeSet<String>,
}

impl LeakRecord {
    /// Merges another record into this one.
    pub fn merge(&mut self, other: &LeakRecord) {
        self.asns.extend(other.asns.iter().cloned());
        self.ips.extend(other.ips.iter().cloned());
        self.words.extend(other.words.iter().cloned());
    }

    /// Total recorded items.
    pub fn len(&self) -> usize {
        self.asns.len() + self.ips.len() + self.words.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The record as JSON: `{"asns": [...], "ips": [...], "words": [...]}`.
    pub fn to_json(&self) -> Json {
        let set = |s: &BTreeSet<String>| {
            Json::Arr(s.iter().map(|v| Json::Str(v.clone())).collect())
        };
        Json::obj()
            .with("asns", set(&self.asns))
            .with("ips", set(&self.ips))
            .with("words", set(&self.words))
    }

    /// Parses the JSON shape produced by [`LeakRecord::to_json`]. Missing
    /// keys are treated as empty sets; non-string members are an error.
    pub fn from_json_str(text: &str) -> Result<LeakRecord, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let set = |key: &str| -> Result<BTreeSet<String>, String> {
            match doc.get(key) {
                None => Ok(BTreeSet::new()),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| format!("{key:?} must be an array"))?
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("{key:?} must hold strings"))
                    })
                    .collect(),
            }
        };
        Ok(LeakRecord {
            asns: set("asns")?,
            ips: set("ips")?,
            words: set("words")?,
        })
    }
}

/// One flagged line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leak {
    /// Zero-based line number in the anonymized text.
    pub line_no: usize,
    /// The offending line.
    pub line: String,
    /// The recorded item that survived.
    pub token: String,
}

/// The scan result.
#[derive(Debug, Clone, Default)]
pub struct LeakReport {
    /// Flagged lines, in order.
    pub leaks: Vec<Leak>,
}

impl LeakReport {
    /// True when the output is clean.
    pub fn is_clean(&self) -> bool {
        self.leaks.is_empty()
    }
}

/// Scans anonymized text against a [`LeakRecord`].
///
/// Construction indexes the record's ordered sets into borrowed hash
/// sets, so one scanner should be built per *corpus* and reused across
/// files (the gate loop in `workflow` does exactly this); per-token
/// membership checks are then O(1) instead of a string-compare walk of
/// a `BTreeSet`.
pub struct LeakScanner<'a> {
    excluded: BTreeSet<String>,
    /// Hash views over the record's sets (borrowing the record).
    ips: HashSet<&'a str>,
    asns: HashSet<&'a str>,
    words: HashSet<&'a str>,
}

impl<'a> LeakScanner<'a> {
    /// A scanner with no exclusions (the paper's raw grep, tokenized).
    pub fn new(record: &'a LeakRecord) -> LeakScanner<'a> {
        LeakScanner::with_exclusions(record, [])
    }

    /// A reusable scanner that suppresses tokens known to be legitimate
    /// images of the permutation (auditor-with-mapping mode). Build once
    /// per corpus, then call [`LeakScanner::scan`] per file.
    pub fn with_exclusions(
        record: &'a LeakRecord,
        legitimate_images: impl IntoIterator<Item = String>,
    ) -> LeakScanner<'a> {
        LeakScanner {
            excluded: legitimate_images.into_iter().collect(),
            ips: record.ips.iter().map(String::as_str).collect(),
            asns: record.asns.iter().map(String::as_str).collect(),
            words: record.words.iter().map(String::as_str).collect(),
        }
    }

    /// One-shot convenience over [`LeakScanner::with_exclusions`] +
    /// [`LeakScanner::scan`].
    pub fn scan_excluding(
        record: &'a LeakRecord,
        legitimate_images: impl IntoIterator<Item = String>,
        text: &str,
    ) -> LeakReport {
        LeakScanner::with_exclusions(record, legitimate_images).scan(text)
    }

    /// Scans `text`, returning every line still containing a recorded
    /// item as a whole number / quad / word.
    pub fn scan(&self, text: &str) -> LeakReport {
        let mut report = LeakReport::default();
        let mut buf = String::new();
        for (line_no, line) in text.lines().enumerate() {
            if let Some(token) = self.first_leak_in(line, &mut buf) {
                report.leaks.push(Leak {
                    line_no,
                    line: line.to_string(),
                    token,
                });
            }
        }
        report
    }

    fn first_leak_in(&self, line: &str, buf: &mut String) -> Option<String> {
        // Address tokens first (digit runs inside a quad are not
        // standalone numbers). `addr/len` prefix tokens match on the
        // address part. Recorded addresses always start with a hex digit
        // or contain `:`, so purely alphabetic tokens skip the lookups.
        if !self.ips.is_empty() {
            for token in line.split(|c: char| c.is_ascii_whitespace()) {
                if token.is_empty()
                    || (!token.as_bytes()[0].is_ascii_alphanumeric() && !token.contains(':'))
                {
                    continue;
                }
                let bare = token.split_once('/').map_or(token, |(a, _)| a);
                for t in [token, bare] {
                    if self.ips.contains(t) && !self.excluded.contains(t) {
                        return Some(t.to_string());
                    }
                }
            }
        }
        // Whole digit runs (catches ASNs inside rewritten regexps like
        // `4401|14041` without false-matching `701` inside `17012`),
        // scanned per whitespace token so address-shaped tokens can be
        // skipped wholesale: hex groups of an IPv6 token (`3a07:148:577::`)
        // are identifiers even when they happen to be all-decimal.
        if !self.asns.is_empty() {
            for token in line.split(|c: char| c.is_ascii_whitespace()) {
                let bare = token.split_once('/').map_or(token, |(a, _)| a);
                if token.contains(':') && bare.parse::<confanon_netprim::Ip6>().is_ok() {
                    continue;
                }
                let bytes = token.as_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    if !bytes[i].is_ascii_digit() {
                        i += 1;
                        continue;
                    }
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let before = if start > 0 { bytes[start - 1] } else { b' ' };
                    let after = if i < bytes.len() { bytes[i] } else { b' ' };
                    // Runs adjacent to `.` are octets of a dotted quad
                    // (handled above); runs adjacent to letters are fragments
                    // of an identifier (`Serial0/1`'s neighbours are fine,
                    // but the hex of a hashed token is not a number).
                    let in_quad = before == b'.' || after == b'.';
                    let in_ident = before.is_ascii_alphabetic() || after.is_ascii_alphabetic();
                    if !in_quad && !in_ident {
                        let run = &token[start..i];
                        if self.asns.contains(run) && !self.excluded.contains(run) {
                            return Some(run.to_string());
                        }
                    }
                }
            }
        }
        // Whole alphabetic runs vs recorded identity words. Runs that are
        // already lowercase (the overwhelming majority of anonymized
        // output) are checked as borrowed slices; only mixed-case runs
        // are lowercased, into a buffer reused across lines.
        if !self.words.is_empty() {
            let bytes = line.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                if !bytes[i].is_ascii_alphabetic() {
                    i += 1;
                    continue;
                }
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                    i += 1;
                }
                let run = &line[start..i];
                let word: &str = if run.bytes().any(|b| b.is_ascii_uppercase()) {
                    buf.clear();
                    buf.extend(run.chars().map(|c| c.to_ascii_lowercase()));
                    buf.as_str()
                } else {
                    run
                };
                if self.words.contains(word) && !self.excluded.contains(word) {
                    return Some(word.to_string());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(asns: &[&str], ips: &[&str], words: &[&str]) -> LeakRecord {
        LeakRecord {
            asns: asns.iter().map(|s| s.to_string()).collect(),
            ips: ips.iter().map(|s| s.to_string()).collect(),
            words: words.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn clean_text_is_clean() {
        let r = record(&["701"], &["1.1.1.1"], &["uunet"]);
        let report = LeakScanner::new(&r).scan("router bgp 9000\n neighbor 9.9.9.9\n");
        assert!(report.is_clean());
    }

    #[test]
    fn whole_number_match_only() {
        let r = record(&["701"], &[], &[]);
        let s = LeakScanner::new(&r);
        assert!(!s.scan("neighbor x remote-as 701").is_clean());
        assert!(s.scan("neighbor x remote-as 17012").is_clean());
        assert!(s.scan("neighbor x remote-as 7011").is_clean());
    }

    #[test]
    fn asn_inside_regexp_alternation_found() {
        let r = record(&["701"], &[], &[]);
        let report = LeakScanner::new(&r).scan("ip as-path access-list 5 permit (44|701|9)");
        assert_eq!(report.leaks.len(), 1);
        assert_eq!(report.leaks[0].token, "701");
    }

    #[test]
    fn octets_do_not_false_match_asns() {
        // 1.2.3.701 contains the digit run 701 but as an octet, not an ASN.
        let r = record(&["701"], &[], &[]);
        assert!(LeakScanner::new(&r).scan("ip address 1.2.3.701").is_clean());
    }

    #[test]
    fn ip_match_is_exact_token() {
        let r = record(&[], &["1.1.1.1"], &[]);
        let s = LeakScanner::new(&r);
        assert!(!s.scan(" ip address 1.1.1.1 255.255.255.0").is_clean());
        assert!(s.scan(" ip address 11.1.1.11 255.255.255.0").is_clean());
    }

    #[test]
    fn word_match_case_insensitive() {
        let r = record(&[], &[], &["uunet"]);
        let s = LeakScanner::new(&r);
        assert!(!s.scan("route-map UUNET-import deny 10").is_clean());
        assert!(s.scan("route-map h1234-import deny 10").is_clean());
    }

    #[test]
    fn exclusion_suppresses_legitimate_images() {
        let r = record(&["701"], &[], &[]);
        let clean = LeakScanner::scan_excluding(
            &r,
            ["701".to_string()],
            "router bgp 701 appears as someone else's image",
        );
        assert!(clean.is_clean());
    }

    #[test]
    fn report_carries_line_numbers() {
        let r = record(&["99"], &[], &[]);
        let report = LeakScanner::new(&r).scan("a\nb 99\nc\n");
        assert_eq!(report.leaks[0].line_no, 1);
    }

    #[test]
    fn record_merge_and_len() {
        let mut a = record(&["1"], &[], &[]);
        let b = record(&["2"], &["3.3.3.3"], &["x"]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }
}

#[cfg(test)]
mod ipv6_scan_tests {
    use super::*;

    #[test]
    fn decimal_hex_groups_in_v6_tokens_are_not_numbers() {
        // `577` here is a hex group of an anonymized address, not an ASN.
        let r = LeakRecord {
            asns: ["577".to_string()].into_iter().collect(),
            ..Default::default()
        };
        let s = LeakScanner::new(&r);
        assert!(s.scan(" ipv6 address 3a07:148:577:b000::1/64").is_clean());
        assert!(s.scan("ipv6 route 3a07:148:577::/48 Null0").is_clean());
        // But the same digits as a standalone number still flag.
        assert!(!s.scan(" neighbor 9.9.9.9 remote-as 577").is_clean());
        // And inside a community token (not a valid v6 address) too.
        assert!(!s.scan(" set community 577:100").is_clean());
    }

    #[test]
    fn recorded_v6_addresses_still_flag() {
        let r = LeakRecord {
            ips: ["2001:db8::1".to_string()].into_iter().collect(),
            ..Default::default()
        };
        let s = LeakScanner::new(&r);
        assert!(!s.scan(" ipv6 address 2001:db8::1/64").is_clean());
        assert!(s.scan(" ipv6 address 2001:db8::2/64").is_clean());
    }
}
