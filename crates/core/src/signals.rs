//! Minimal async-signal-safe termination flag.
//!
//! Long runs must not die mid-publish when an operator (or an init
//! system) sends `SIGTERM`: [`write_atomic`](crate::fsx::write_atomic)
//! guarantees no torn file, but the default signal disposition kills
//! the process between journal entries, losing work that `--resume`
//! then has to redo — and a draining daemon has resident tenant state
//! to flush first. The handler installed here does the only thing an
//! async-signal-safe handler may do: set an atomic flag. The publish
//! loop (and the serve accept loop) polls [`term_requested`] between
//! atomic writes and converts the flag into an orderly exit — batch
//! finishes the in-flight rename and returns the resumable
//! interruption error; serve drains.
//!
//! No external crate is involved: `std` already links libc, so the
//! C `signal(2)` entry point is declared directly. On non-Unix targets
//! installation is a no-op and the flag can only be set by
//! [`request_term`].

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    /// `SIGTERM` on every Unix this crate targets (POSIX reserves 15).
    const SIGTERM: i32 = 15;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> isize;
    }

    extern "C" fn on_term(_signum: i32) {
        // Only async-signal-safe work is allowed here: one atomic store.
        super::TERM_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub(super) fn install() {
        unsafe {
            // SIG_ERR is ignored deliberately: failing to install keeps
            // the previous (default) disposition, which is the behavior
            // the caller had before asking.
            let _ = signal(SIGTERM, on_term);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the `SIGTERM` flag handler (idempotent). After this call a
/// `SIGTERM` no longer kills the process; it sets the flag read by
/// [`term_requested`]. `SIGINT` (interactive Ctrl-C) keeps its default
/// kill disposition so a foreground run stays cancellable instantly.
pub fn install_term_handler() {
    imp::install();
}

/// Whether a termination request (signal or [`request_term`]) has been
/// observed since process start / the last [`clear_term`].
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Sets the termination flag without a signal — the in-process
/// equivalent of `SIGTERM`, used by the serve shutdown frame and by
/// deterministic tests (the signal itself is inherently racy to aim at
/// a precise pipeline point).
pub fn request_term() {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the flag. Test-only in spirit (the process-wide flag is
/// shared, so in-process tests must clear what they set); a production
/// run never needs it.
pub fn clear_term() {
    TERM_REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        clear_term();
        assert!(!term_requested());
        request_term();
        assert!(term_requested());
        clear_term();
        assert!(!term_requested());
    }

    #[test]
    fn install_is_idempotent() {
        install_term_handler();
        install_term_handler();
    }
}
