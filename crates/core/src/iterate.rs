//! The §6.1 iterative methodology, as an executable harness.
//!
//! "After anonymizing configs, we highlight for a human operator lines
//! that seem likely to leak information. Lines they believe are dangerous
//! are used to add more rules to the anonymizer. Our experience is that
//! the iteration closes quickly, requiring fewer than 5 iterations over 3
//! months to anonymize 4.3 million lines of configuration."
//!
//! We model the process exactly: start from an anonymizer with some rule
//! set (possibly ablated, standing in for "rules not yet discovered"),
//! anonymize, scan for residual leaks, and — playing the human operator —
//! re-enable the rule whose absence explains the worst leak. The trace
//! records how many rounds the loop takes to reach a clean scan.

use std::collections::HashSet;

use crate::anonymizer::{Anonymizer, AnonymizerConfig};
use crate::leak::{LeakRecord, LeakScanner};
use crate::passlist::PassList;
use crate::rules::RuleId;

/// One round of the iteration.
#[derive(Debug, Clone)]
pub struct IterationRound {
    /// Round number (1-based).
    pub round: usize,
    /// Rules enabled during the round (count only; the full 28 minus the
    /// still-ablated set).
    pub rules_enabled: usize,
    /// Residual leaks found by the scanner.
    pub leaks_found: usize,
    /// Rule re-enabled in response (the "operator adds a rule" step).
    pub rule_added: Option<String>,
}

/// The full trace of the closure loop.
#[derive(Debug, Clone)]
pub struct IterationTrace {
    /// Every round, in order.
    pub rounds: Vec<IterationRound>,
    /// Whether the loop reached a clean scan.
    pub converged: bool,
}

impl IterationTrace {
    /// Number of rounds taken (the paper's headline: fewer than 5).
    pub fn iterations(&self) -> usize {
        self.rounds.len()
    }
}

/// Runs the iterative closure loop over `configs` (the text of every
/// router in a network), starting with `initially_disabled` rules ablated.
///
/// `record` is the ground-truth leak record (from a full-rule recording
/// pass or from the generator), playing the role of the operator's
/// knowledge of what must not appear. Each round anonymizes everything,
/// scans, and re-enables one ablated rule chosen by examining the leaks —
/// the automation of "lines they believe are dangerous are used to add
/// more rules".
pub fn iterate_to_closure(
    configs: &[String],
    owner_secret: &[u8],
    initially_disabled: &[RuleId],
    record: &LeakRecord,
    legitimate_images: &[String],
    max_rounds: usize,
) -> IterationTrace {
    let mut disabled: HashSet<RuleId> = initially_disabled.iter().copied().collect();
    let mut rounds = Vec::new();
    let mut converged = false;

    for round in 1..=max_rounds {
        let mut cfg = AnonymizerConfig::new(owner_secret.to_vec());
        cfg.disabled_rules = disabled.clone();
        cfg.pass_list = PassList::builtin();
        let mut anon = Anonymizer::new(cfg);

        let mut all_leaks = 0usize;
        for text in configs {
            let out = anon.anonymize_config(text);
            let report = LeakScanner::scan_excluding(
                record,
                legitimate_images.iter().cloned(),
                &out.text,
            );
            all_leaks += report.leaks.len();
        }

        if all_leaks == 0 {
            rounds.push(IterationRound {
                round,
                rules_enabled: 28 - disabled.len(),
                leaks_found: 0,
                rule_added: None,
            });
            converged = true;
            break;
        }

        // The "operator" step: re-enable one ablated rule. Deterministic
        // order (lowest RuleId first) models the operator fixing the most
        // obvious class of leak each round.
        let mut ablated: Vec<RuleId> = disabled.iter().copied().collect();
        ablated.sort();
        let added = ablated.first().copied();
        if let Some(r) = added {
            disabled.remove(&r);
        }
        rounds.push(IterationRound {
            round,
            rules_enabled: 28 - (disabled.len() + usize::from(added.is_some())),
            leaks_found: all_leaks,
            rule_added: added.map(|r| r.to_string()),
        });
        if added.is_none() {
            // Nothing left to enable but leaks remain: cannot converge.
            break;
        }
    }

    IterationTrace { rounds, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leak::LeakRecord;

    fn ground_truth() -> LeakRecord {
        let mut r = LeakRecord::default();
        r.asns.insert("701".to_string());
        r.asns.insert("1111".to_string());
        r.ips.insert("12.126.236.17".to_string());
        r
    }

    fn network() -> Vec<String> {
        vec![
            "router bgp 1111\n neighbor 12.126.236.17 remote-as 701\n".to_string(),
            "router bgp 1111\n neighbor 12.126.236.17 remote-as 701\n set as-path prepend 1111 1111\n".to_string(),
        ]
    }

    fn images(secret: &[u8]) -> Vec<String> {
        let anon = Anonymizer::new(AnonymizerConfig::new(secret.to_vec()));
        ["701", "1111"]
            .iter()
            .map(|s| anon.asn_map().map(s.parse().unwrap()).to_string())
            .collect()
    }

    #[test]
    fn full_rules_converge_in_one_round() {
        let trace = iterate_to_closure(
            &network(),
            b"s",
            &[],
            &ground_truth(),
            &images(b"s"),
            10,
        );
        assert!(trace.converged);
        assert_eq!(trace.iterations(), 1);
        assert_eq!(trace.rounds[0].leaks_found, 0);
    }

    #[test]
    fn ablated_rules_converge_within_paper_bound() {
        // Ablate two ASN locators: the loop must converge in < 5 rounds
        // (the paper's experience), here exactly 3 (two re-enables plus
        // the clean round).
        let trace = iterate_to_closure(
            &network(),
            b"s",
            &[RuleId::R06RouterBgpAsn, RuleId::R07NeighborRemoteAs],
            &ground_truth(),
            &images(b"s"),
            10,
        );
        assert!(trace.converged, "{trace:#?}");
        assert!(trace.iterations() < 5, "{trace:#?}");
        assert!(trace.rounds[0].leaks_found > 0);
        assert_eq!(trace.rounds.last().unwrap().leaks_found, 0);
    }

    #[test]
    fn trace_records_rules_added() {
        let trace = iterate_to_closure(
            &network(),
            b"s",
            &[RuleId::R07NeighborRemoteAs],
            &ground_truth(),
            &images(b"s"),
            10,
        );
        assert_eq!(
            trace.rounds[0].rule_added.as_deref(),
            Some("neighbor-remote-as")
        );
    }

    #[test]
    fn non_convergence_reported_when_leak_is_unfixable() {
        // A record containing a token the anonymizer never touches (a
        // pass-list keyword) can never scan clean.
        let mut record = ground_truth();
        record.words.insert("router".to_string());
        let trace = iterate_to_closure(&network(), b"s", &[], &record, &images(b"s"), 3);
        assert!(!trace.converged);
    }
}
