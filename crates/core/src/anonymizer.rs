//! The anonymization pipeline.
//!
//! One pass over the config: classify lines (comments, banners, free
//! text, commands), then rewrite command lines token by token under the
//! 28 rules. The order of checks per token mirrors the paper's
//! conservatism — context rules (ASNs, secrets, regexps) first, then
//! addresses, then the generic "hash anything not on the pass-list"
//! fallback, so nothing escapes by being unrecognized.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};

use confanon_asnanon::rewrite::{rewrite_aspath_regex_full, rewrite_community_regex_full};
use confanon_asnanon::{AsnMap, CommunityMap, LargeCommunityMap, RewriteOptions};
use confanon_crypto::TokenHasher;
use confanon_iosparse::{
    classify_lines, rebuild, rebuild_sparse, segment, tokenize, LineKind, Segment, BYTE_CLASS,
    CLASS_ALPHA, CLASS_DIGIT,
};
use confanon_ipanon::{Ip6Anonymizer, IpAnonymizer, RandomScramble};
use confanon_netprim::{special6_kind, special_kind, Ip, Ip6};

use crate::discover::{ObservationLog, ObservedIp};
use crate::error::BatchPhase;
use crate::leak::LeakRecord;
use crate::passlist::PassList;
use crate::rules::{LineClass, LineClassCache, PrefilterStats, RuleId};
use crate::stats::{AnonymizationStats, RewriteStats};

/// Distinct-token cap for the salted-hash memo: beyond it, hashes are
/// still computed but no longer interned, so a hostile corpus of unique
/// identifiers cannot grow the memo without bound. The memo is a pure
/// function of (owner secret, token), so capping — like clearing or
/// cloning it — can never change an output byte.
const HASH_MEMO_CAP: usize = 65_536;

/// Which IP-address mapping the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IpScheme {
    /// The paper's extended `-a50` trie: prefix-, class-, and
    /// subnet-address-preserving (the production scheme).
    #[default]
    StructurePreserving,
    /// The negative control: injective per-address scramble with no
    /// structural guarantees. The validation suites are *expected to
    /// fail* under this scheme — that failure is experiment E15's
    /// quantified argument for the paper's design.
    Scramble,
}

/// Configuration for an [`Anonymizer`].
#[derive(Clone)]
pub struct AnonymizerConfig {
    /// The secret chosen by the network owner (salts every hash and keys
    /// every permutation; §6.1).
    pub owner_secret: Vec<u8>,
    /// Compact rewritten regexps through the minimal-DFA synthesis
    /// extension instead of emitting raw alternations.
    pub compact_regexps: bool,
    /// Rules disabled for ablation experiments (§6.1 iteration). Empty in
    /// production.
    pub disabled_rules: HashSet<RuleId>,
    /// The pass-list of unprivileged tokens.
    pub pass_list: PassList,
    /// IP mapping scheme (default: the paper's structure-preserving trie).
    pub ip_scheme: IpScheme,
    /// Chaos-engineering knob: when set, the anonymizer panics upon
    /// seeing a line containing the marker string during the given batch
    /// phase ([`BatchPhase::Discover`] = the discovery pass,
    /// [`BatchPhase::Rewrite`] = the emit pass). This exists so the
    /// batch pipeline's panic containment can be exercised
    /// deterministically in tests; production callers leave it `None`.
    pub fault_marker: Option<(String, crate::error::BatchPhase)>,
    /// Disables the contextual-rule prefilter fast path
    /// ([`crate::rules::Prefilter`]), forcing the full context matcher on
    /// every line. Output and rule fires are identical either way — this
    /// exists for the differential property tests and the
    /// `--bench-json` prefilter benchmark.
    pub disable_prefilter: bool,
    /// Disables the zero-copy rewrite path: every command line goes
    /// through the pre-refactor always-allocating pipeline (per-token
    /// `String`s, dense [`confanon_iosparse::rebuild`], uncached salted
    /// hashing). Output bytes and rule fires are identical either way —
    /// this exists for the differential property tests and the
    /// `--bench-json` `rewrite` benchmark's before/after comparison (see
    /// DESIGN.md §17).
    pub disable_zero_copy: bool,
}

impl AnonymizerConfig {
    /// Production defaults: all 28 rules on, builtin pass-list.
    pub fn new(owner_secret: Vec<u8>) -> AnonymizerConfig {
        AnonymizerConfig {
            owner_secret,
            compact_regexps: false,
            disabled_rules: HashSet::new(),
            pass_list: PassList::builtin(),
            ip_scheme: IpScheme::default(),
            fault_marker: None,
            disable_prefilter: false,
            disable_zero_copy: false,
        }
    }

    /// Disables one rule (builder style).
    pub fn without_rule(mut self, rule: RuleId) -> AnonymizerConfig {
        self.disabled_rules.insert(rule);
        self
    }
}

/// The result of anonymizing one configuration.
#[derive(Debug, Clone)]
pub struct AnonymizedConfig {
    /// The anonymized text.
    pub text: String,
    /// Counters for this config.
    pub stats: AnonymizationStats,
}

/// The anonymizer. Holds the keyed mapping state shared across all
/// configs of one network — "all identifiers must be anonymized in a
/// consistent manner" (§3.2), which extends across files: the same
/// route-map name, address, or ASN in two routers of one network must map
/// identically, so one `Anonymizer` instance processes the whole network.
///
/// `Anonymizer` is `Clone` so that, once its mapping state has been
/// warmed by a discovery pass ([`Anonymizer::discover_config`]), worker
/// threads can each take a copy and re-emit files in parallel with pure
/// lookups — see [`crate::batch::BatchPipeline`].
#[derive(Clone)]
pub struct Anonymizer {
    cfg: AnonymizerConfig,
    hasher: TokenHasher,
    ip: IpAnonymizer,
    ip6: Ip6Anonymizer,
    scramble: RandomScramble,
    community: CommunityMap,
    large_community: LargeCommunityMap,
    record: LeakRecord,
    /// Numeric strings and dotted quads the anonymizer itself emitted
    /// (permutation images, rewritten-regexp members, re-digited phones).
    /// These are the principled exclusion set for the §6.1 scanner: a
    /// *leak* is an original value surviving, not an image coinciding
    /// with one.
    emitted: std::collections::BTreeSet<String>,
    total_stats: AnonymizationStats,
    /// `true` in the normal (emit) mode; `false` during a discovery pass,
    /// where output assembly and the stateless token hashes are skipped
    /// but every rule, mapping-state mutation, and counter still runs.
    emit: bool,
    /// Interned prefilter verdicts per line text (a pure function of the
    /// line, so cache state can never change behaviour).
    line_cache: LineClassCache,
    prefilter_stats: PrefilterStats,
    /// Interned salted token hashes (a pure function of the owner secret
    /// and the token — identifiers repeat heavily in real configs, so
    /// most SHA-1 invocations are answered by one lookup). Capped at
    /// [`HASH_MEMO_CAP`].
    hash_memo: HashMap<String, String>,
    /// Borrow-or-own accounting for the zero-copy rewrite path. Kept
    /// outside [`AnonymizationStats`] deliberately: borrow verdicts only
    /// exist in emit mode, and per-file stats must stay identical
    /// between the discovery and emit passes.
    rewrite_stats: RewriteStats,
    /// `Some` only on shard-scan clones during sharded discovery: instead
    /// of mutating the tries, [`Anonymizer::map_ip`]/[`Anonymizer::map_ip6`]
    /// log the address's first corpus position here for the canonical
    /// replay. See [`crate::discover`].
    observe: Option<ObservationLog>,
    /// Append-only journal of every distinct trie-mapped identifier in
    /// first-mapped order — the replayable transcript persistent state
    /// (`crate::state`) serializes. Re-mapping the journal through a
    /// fresh anonymizer with the same secret rebuilds the tries
    /// node-for-node (mappings are sticky, so the trie is a function of
    /// the first-insertion sequence alone).
    journal: IdJournal,
}

/// The identifier journal: distinct mapped addresses in first-mapped
/// order (see [`Anonymizer::journal`]).
#[derive(Clone, Default)]
struct IdJournal {
    seen4: HashSet<u32>,
    seen6: HashSet<u128>,
    order: Vec<ObservedIp>,
}

impl IdJournal {
    fn note(&mut self, obs: ObservedIp) {
        let fresh = match obs {
            ObservedIp::V4(ip) => self.seen4.insert(ip.0),
            ObservedIp::V6(ip) => self.seen6.insert(ip.0),
        };
        if fresh {
            self.order.push(obs);
        }
    }
}

impl Anonymizer {
    /// Creates an anonymizer for one network.
    pub fn new(cfg: AnonymizerConfig) -> Anonymizer {
        let hasher = TokenHasher::new(&cfg.owner_secret);
        let ip = IpAnonymizer::with_options(
            &cfg.owner_secret,
            !cfg.disabled_rules.contains(&RuleId::R24SubnetAddressPreserve),
        );
        let ip6 = Ip6Anonymizer::new(&cfg.owner_secret);
        let scramble = RandomScramble::new(&cfg.owner_secret);
        let community = CommunityMap::new(&cfg.owner_secret);
        let large_community = LargeCommunityMap::new(&cfg.owner_secret);
        Anonymizer {
            cfg,
            hasher,
            ip,
            ip6,
            scramble,
            community,
            large_community,
            record: LeakRecord::default(),
            emitted: std::collections::BTreeSet::new(),
            total_stats: AnonymizationStats::default(),
            emit: true,
            line_cache: LineClassCache::default(),
            prefilter_stats: PrefilterStats::default(),
            hash_memo: HashMap::new(),
            rewrite_stats: RewriteStats::default(),
            observe: None,
            journal: IdJournal::default(),
        }
    }

    /// The ASN permutation in use (for audits and experiments).
    pub fn asn_map(&self) -> &AsnMap {
        self.community.asn_map()
    }

    /// The community map in use (for audits and experiments).
    pub fn community_map(&self) -> &CommunityMap {
        &self.community
    }

    /// Everything recorded so far for leak scanning (§6.1).
    pub fn leak_record(&self) -> &LeakRecord {
        &self.record
    }

    /// Every numeric string / dotted quad the anonymizer emitted as a
    /// replacement value — pass these to
    /// [`crate::leak::LeakScanner::scan_excluding`] to suppress the
    /// image-coincidence false positives the paper's Genuity footnote
    /// describes.
    pub fn emitted_exclusions(&self) -> Vec<String> {
        self.emitted.iter().cloned().collect()
    }

    /// Aggregate statistics across every config processed so far.
    pub fn total_stats(&self) -> &AnonymizationStats {
        &self.total_stats
    }

    /// Node counts of the (v4, v6) prefix-preserving tries. Discovery
    /// walks the whole corpus in a fixed order, so after a discovery
    /// pass these are a deterministic fingerprint of the corpus's
    /// address structure — resume and job count cannot change them.
    pub fn trie_node_counts(&self) -> (usize, usize) {
        (self.ip.node_count(), self.ip6.node_count())
    }

    fn enabled(&self, rule: RuleId) -> bool {
        !self.cfg.disabled_rules.contains(&rule)
    }

    /// One token hash, skipped (empty string) during discovery: the hash
    /// is a pure function of the owner secret and the token, so eliding
    /// it cannot change any mapping state a later emit pass depends on.
    ///
    /// Emitted hashes are interned in [`Anonymizer::hash_memo`]; the
    /// legacy `disable_zero_copy` path bypasses the memo so the
    /// differential benchmark measures the genuinely uncached
    /// pre-refactor cost.
    fn hash_emit(&mut self, tok: &str) -> String {
        if !self.emit {
            return String::new();
        }
        if self.cfg.disable_zero_copy {
            return self.hasher.hash_token(tok);
        }
        if let Some(h) = self.hash_memo.get(tok) {
            self.rewrite_stats.hash_memo_hits += 1;
            return h.clone();
        }
        let h = self.hasher.hash_token(tok);
        self.rewrite_stats.hash_memo_misses += 1;
        if self.hash_memo.len() < HASH_MEMO_CAP {
            self.hash_memo.insert(tok.to_string(), h.clone());
        }
        h
    }

    /// Runs the full rule pipeline over one configuration *without*
    /// producing output text.
    ///
    /// This is the sequential identifier-discovery pass of
    /// [`crate::batch::BatchPipeline`]: it performs exactly the mapping
    /// mutations an [`Anonymizer::anonymize_config`] call would — trie
    /// inserts (in the same order), leak-record and emitted-image set
    /// inserts, statistics — while skipping the two costs that dominate
    /// emission and touch no shared state: per-segment salted hashing
    /// (§4.1: one SHA-1 per non-pass-list token) and output-string
    /// assembly. After discovering every file of a corpus, a clone of
    /// this anonymizer re-emits any of those files with pure lookups,
    /// byte-identical to a sequential run.
    pub fn discover_config(&mut self, text: &str) -> AnonymizationStats {
        self.emit = false;
        // Restore emit-mode even if the rule pipeline panics: the batch
        // layer contains per-file panics, and a poisoned `emit` flag
        // would silently turn every later emission into empty output.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.anonymize_config(text)
        }));
        self.emit = true;
        match result {
            Ok(out) => out.stats,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Anonymizes one configuration file.
    pub fn anonymize_config(&mut self, text: &str) -> AnonymizedConfig {
        let lines: Vec<&str> = text.lines().collect();
        let kinds = classify_lines(&lines);
        let mut stats = AnonymizationStats::default();
        let mut out = String::with_capacity(if self.emit { text.len() } else { 0 });
        // Delimiter of the banner block currently open, for BannerEnd.
        let mut current_banner_delim: Option<String> = None;

        for (&line, kind) in lines.iter().zip(&kinds) {
            if let Some((marker, phase)) = &self.cfg.fault_marker {
                let armed = match phase {
                    BatchPhase::Discover => !self.emit,
                    BatchPhase::Rewrite => self.emit,
                    BatchPhase::Scan => false,
                };
                assert!(
                    !(armed && line.contains(marker.as_str())),
                    "injected fault: marker {marker:?} hit"
                );
            }
            stats.lines_total += 1;
            // Word counting: command-shaped lines count inside
            // `anonymize_command_line` (which tokenizes anyway); the
            // other kinds count here.
            match kind {
                LineKind::Blank => {
                    out.push('\n');
                }
                LineKind::Comment => {
                    let words = tokenize(line).len() as u64;
                    stats.words_total += words;
                    if self.enabled(RuleId::R03BangComments) {
                        stats.fire(RuleId::R03BangComments);
                        stats.comment_lines_stripped += 1;
                        // Keep the structural bang; drop the text. The
                        // bang itself is one "word" that survives.
                        stats.words_removed_as_comments += words.saturating_sub(1);
                        out.push_str("!\n");
                    } else {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                LineKind::FreeText => {
                    if self.enabled(RuleId::R04DescriptionText) {
                        let words = tokenize(line).len() as u64;
                        stats.words_total += words;
                        stats.fire(RuleId::R04DescriptionText);
                        stats.freetext_lines_dropped += 1;
                        stats.words_removed_as_comments += words;
                        // Drop the whole line.
                    } else {
                        out.push_str(&self.anonymize_command_line(line, &mut stats));
                        out.push('\n');
                    }
                }
                LineKind::BannerHeader => {
                    let toks = tokenize(line);
                    let words = toks.len() as u64;
                    stats.words_total += words;
                    let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
                    // Track the delimiter only when the classifier actually
                    // opened a block: a self-closing one-line banner must
                    // not leave stale state behind, or an intact file would
                    // be miscounted as ending inside a banner.
                    current_banner_delim = confanon_iosparse::banner_delimiter(&texts)
                        .filter(|d| !confanon_iosparse::banner_self_closes(line, d));
                    if self.enabled(RuleId::R05BannerBlocks) {
                        stats.fire(RuleId::R05BannerBlocks);
                        // Keep `banner <type> <delim…>` but truncate any
                        // text after the opening delimiter on this line
                        // (one-line banners).
                        let kept = banner_header_skeleton(line);
                        let kept_words = tokenize(&kept).len() as u64;
                        stats.words_removed_as_comments += words.saturating_sub(kept_words);
                        out.push_str(&kept);
                        out.push('\n');
                    } else {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                LineKind::BannerBody => {
                    let words = tokenize(line).len() as u64;
                    stats.words_total += words;
                    if self.enabled(RuleId::R05BannerBlocks) {
                        stats.banner_lines_dropped += 1;
                        stats.words_removed_as_comments += words;
                    } else {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                LineKind::BannerEnd => {
                    let words = tokenize(line).len() as u64;
                    stats.words_total += words;
                    // The block closed: clear the open-delimiter state in
                    // both branches so EOF accounting stays accurate.
                    let delim = current_banner_delim.take().unwrap_or_default();
                    if self.enabled(RuleId::R05BannerBlocks) {
                        // Emit only the delimiter: the closing line may
                        // carry banner text before/after it (IOS discards
                        // text after the delimiter, but text *before* it
                        // is content — e.g. a body line that happens to
                        // contain the delimiter character).
                        let kept_words = u64::from(!delim.is_empty());
                        stats.words_removed_as_comments += words.saturating_sub(kept_words);
                        out.push_str(&delim);
                        out.push('\n');
                    } else {
                        out.push_str(line.trim_end());
                        out.push('\n');
                    }
                }
                LineKind::Command => {
                    out.push_str(&self.anonymize_command_line(line, &mut stats));
                    out.push('\n');
                }
            }
        }

        if current_banner_delim.take().is_some() {
            // The banner never closed before EOF (truncated or corrupt
            // file). The classifier already treated the whole tail as
            // banner text — counted in `banner_lines_dropped` above when
            // R05 is on — so nothing leaks; record that the file ended
            // inside a banner for the operator's report.
            stats.unterminated_banners += 1;
        }

        self.total_stats.merge(&stats);
        if !self.emit {
            // Discovery: the assembled fragments are meaningless; return
            // an empty text so no caller can mistake them for output.
            out.clear();
        }
        AnonymizedConfig { text: out, stats }
    }

    /// Token-level rewriting of one command line, borrow-or-own: the
    /// returned [`Cow`] is `Borrowed` (no allocation, no copy) exactly
    /// when no rewrite changed a byte of the line, and `Owned` otherwise.
    ///
    /// The borrow verdict is a *byte* property, not a rule-fire
    /// property: classification-only fires (a pass-listed keyword still
    /// fires R01, a special address passes through under R25) leave the
    /// line `Borrowed`, and a coincidental identity (a permutation
    /// fixed point emitting the original digits) is normalized back to
    /// "untouched" before assembly. DESIGN.md §17 states the invariant
    /// and the untouched-line identity proof; rule fires and output
    /// bytes are proven identical to the `disable_zero_copy` legacy
    /// path by the differential property suite.
    pub fn anonymize_command_line<'a>(
        &mut self,
        line: &'a str,
        stats: &mut AnonymizationStats,
    ) -> Cow<'a, str> {
        if self.cfg.disable_zero_copy {
            return Cow::Owned(self.anonymize_command_line_legacy(line, stats));
        }
        let toks = tokenize(line);
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        stats.words_total += texts.len() as u64;
        let mut out: Vec<Option<String>> = vec![None; texts.len()];

        // Prefilter fast path: most lines provably cannot fire a context
        // rule, and for those the lowercased line and the full
        // slice-pattern matcher are skipped wholesale. The verdict is a
        // conservative superset (see [`crate::rules::Prefilter`]), so
        // output bytes and rule fire counts are identical either way.
        let class = if self.cfg.disable_prefilter {
            LineClass::ContextScan
        } else {
            self.line_cache.classify(line, &mut self.prefilter_stats)
        };
        if class == LineClass::ContextScan {
            // One lowercase copy of the whole line instead of one String
            // per token: ASCII lowercasing is byte-for-byte, so the token
            // spans index into the lowered copy directly.
            let lowered = line.to_ascii_lowercase();
            let lower: Vec<&str> = toks.iter().map(|t| &lowered[t.start..t.end()]).collect();
            self.apply_context_rules(&lower, &texts, &mut out, stats);
        }

        // Per-token pass for everything the context rules left alone;
        // `None` now means "kept verbatim" and stays `None`.
        for (i, tok) in texts.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            out[i] = self.rewrite_token(tok, stats);
        }

        if !self.emit {
            // Discovery discards all output; every counter and mapping
            // mutation above already happened.
            return Cow::Borrowed("");
        }
        // Normalize coincidental identities — a rewrite that emitted the
        // original bytes (permutation fixed point, context rule re-issuing
        // the token) — so the borrow verdict below means exactly "no byte
        // of this line changed".
        for (slot, text) in out.iter_mut().zip(&texts) {
            if slot.as_deref() == Some(*text) {
                *slot = None;
            }
        }
        self.rewrite_stats.lines_total += 1;
        self.rewrite_stats.allocations_avoided +=
            out.iter().filter(|s| s.is_none()).count() as u64;
        let rebuilt = rebuild_sparse(line, &toks, &out);
        match &rebuilt {
            Cow::Borrowed(_) => {
                self.rewrite_stats.lines_borrowed += 1;
                // The skipped line rebuild itself.
                self.rewrite_stats.allocations_avoided += 1;
            }
            Cow::Owned(_) => self.rewrite_stats.lines_rewritten += 1,
        }
        rebuilt
    }

    /// The pre-refactor rewrite path, kept in-tree (behind
    /// [`AnonymizerConfig::disable_zero_copy`]) as the differential
    /// baseline: every token becomes an owned `String` and the line is
    /// reassembled through the dense [`rebuild`].
    fn anonymize_command_line_legacy(
        &mut self,
        line: &str,
        stats: &mut AnonymizationStats,
    ) -> String {
        let toks = tokenize(line);
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        stats.words_total += texts.len() as u64;
        let mut out: Vec<Option<String>> = vec![None; texts.len()];

        let class = if self.cfg.disable_prefilter {
            LineClass::ContextScan
        } else {
            self.line_cache.classify(line, &mut self.prefilter_stats)
        };
        if class == LineClass::ContextScan {
            let lower: Vec<String> = texts.iter().map(|t| t.to_ascii_lowercase()).collect();
            let lref: Vec<&str> = lower.iter().map(String::as_str).collect();
            self.apply_context_rules(&lref, &texts, &mut out, stats);
        }

        // Per-token pass for everything the context rules left alone.
        for (i, tok) in texts.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            out[i] = Some(self.anonymize_token(tok, stats));
        }

        if !self.emit {
            return String::new();
        }
        // The per-token pass above fills every remaining slot, so `None`
        // is unreachable; an empty replacement (token dropped) is the
        // benign fallback if that invariant ever breaks.
        let rewritten: Vec<String> = out.into_iter().map(Option::unwrap_or_default).collect();
        rebuild(line, &toks, &rewritten)
    }

    /// The line-context rules: ASN locators (R06–R17), regexp rewriting
    /// (R09, R12), and the miscellaneous identity rules (R18–R21). Fills
    /// `out[i]` for every token it decides; leaves the rest `None`.
    fn apply_context_rules(
        &mut self,
        lower: &[&str],
        texts: &[&str],
        out: &mut [Option<String>],
        stats: &mut AnonymizationStats,
    ) {
        match lower {
            ["router", "bgp", ..] if lower.len() >= 3 => {
                self.asn_at(2, texts, out, stats, RuleId::R06RouterBgpAsn);
            }
            ["neighbor", _, "remote-as", ..] if lower.len() >= 4 => {
                self.asn_at(3, texts, out, stats, RuleId::R07NeighborRemoteAs);
            }
            ["neighbor", _, "local-as", ..] if lower.len() >= 4 => {
                self.asn_at(3, texts, out, stats, RuleId::R15NeighborLocalAs);
            }
            ["set", "as-path", "prepend", ..] => {
                for i in 3..texts.len() {
                    self.asn_at(i, texts, out, stats, RuleId::R08AsPathPrepend);
                }
            }
            ["bgp", "confederation", "identifier", ..] if lower.len() >= 4 => {
                self.asn_at(3, texts, out, stats, RuleId::R10ConfederationIdentifier);
            }
            ["bgp", "confederation", "peers", ..] => {
                for i in 3..texts.len() {
                    self.asn_at(i, texts, out, stats, RuleId::R11ConfederationPeers);
                }
            }
            ["bgp", "listen", "range", ..] => {
                if let Some(pos) = lower.iter().position(|t| *t == "remote-as") {
                    if pos + 1 < texts.len() {
                        self.asn_at(pos + 1, texts, out, stats, RuleId::R16BgpListenRange);
                    }
                }
            }
            ["set", "extcommunity", _, ..] => {
                for i in 3..texts.len() {
                    if self.enabled(RuleId::R17ExtCommunityContext) {
                        if let Some(mapped) = self.try_community(texts[i], stats) {
                            stats.fire(RuleId::R17ExtCommunityContext);
                            out[i] = Some(mapped);
                        }
                    }
                }
            }
            ["ip", "as-path", "access-list", _, act, ..]
                if lower.len() >= 6 && matches!(*act, "permit" | "deny") =>
            {
                self.rewrite_regex_tokens(5, texts, out, stats, RegexDomain::AsPath);
            }
            ["ip", "community-list", _, act, ..]
                if lower.len() >= 5 && matches!(*act, "permit" | "deny") =>
            {
                self.community_list_tokens(4, texts, out, stats);
            }
            // Named/expanded community-list form:
            // `ip community-list expanded NAME permit <regexp>`.
            ["ip", "community-list", kind, _, act, ..]
                if lower.len() >= 6
                    && matches!(*kind, "standard" | "expanded")
                    && matches!(*act, "permit" | "deny") =>
            {
                self.community_list_tokens(5, texts, out, stats);
            }
            ["set", "community", ..] => {
                for i in 2..texts.len() {
                    if matches!(lower[i], "additive" | "none" | "internet") {
                        continue;
                    }
                    if self.enabled(RuleId::R13SetCommunity) {
                        if let Some(mapped) = self.try_community(texts[i], stats) {
                            stats.fire(RuleId::R13SetCommunity);
                            out[i] = Some(mapped);
                        }
                    }
                }
            }
            ["hostname", ..] if lower.len() >= 2 => {
                self.hash_whole(1, texts, out, stats, RuleId::R19HostnameDomain);
            }
            ["ip", "domain-name", ..] if lower.len() >= 3 => {
                self.hash_whole(2, texts, out, stats, RuleId::R19HostnameDomain);
            }
            ["ip", "domain", "name", ..] if lower.len() >= 4 => {
                self.hash_whole(3, texts, out, stats, RuleId::R19HostnameDomain);
            }
            ["snmp-server", "community", ..] if lower.len() >= 3 => {
                self.hash_secret(2, texts, out, stats);
            }
            ["username", ..] if lower.len() >= 2 => {
                self.hash_secret(1, texts, out, stats);
                self.hash_after_keyword(lower, texts, out, stats);
            }
            ["dialer", "string", ..] if lower.len() >= 3
                && self.enabled(RuleId::R18DialerStrings) => {
                    stats.fire(RuleId::R18DialerStrings);
                    stats.phone_numbers_mapped += 1;
                    let image = self.map_phone(texts[2]);
                    self.emitted.insert(image.clone());
                    out[2] = Some(image);
                }
            ["ntp", "server", ..] | ["logging", "host", ..] | ["tacacs-server", "host", ..]
            | ["radius-server", "host", ..]
                // Addresses are handled by the per-token IP rule; a *name*
                // argument hashes whole so domain structure dies (R21).
                if self.enabled(RuleId::R21ServerLiterals) && texts.len() >= 3 => {
                    let arg = texts[2];
                    if arg.parse::<Ip>().is_err() {
                        stats.fire(RuleId::R21ServerLiterals);
                        self.record_word(arg);
                        out[2] = Some(self.hash_emit(arg));
                    }
                }
            ["ip", "name-server", ..] => { /* per-token IP rule covers it */ }
            _ => {}
        }

        // Secrets appearing behind `password` / `secret` / `key` keywords
        // anywhere on the line (R20), e.g. `enable secret 5 $1$...`.
        if lower.first().is_some_and(|h| *h != "username") {
            self.hash_after_keyword(lower, texts, out, stats);
        }
    }

    /// Permutes the ASN token at `i` if it parses as a 16-bit number.
    fn asn_at(
        &mut self,
        i: usize,
        texts: &[&str],
        out: &mut [Option<String>],
        stats: &mut AnonymizationStats,
        rule: RuleId,
    ) {
        if !self.enabled(rule) || i >= texts.len() {
            return;
        }
        let Ok(asn) = texts[i].parse::<u16>() else {
            return;
        };
        stats.fire(rule);
        stats.asns_mapped += 1;
        if confanon_asnanon::map::is_public(asn) {
            self.record.asns.insert(asn.to_string());
        }
        let image = self.asn_map().map(asn).to_string();
        self.emitted.insert(image.clone());
        out[i] = Some(image);
    }

    /// Maps a community literal token, recording the ASN half. With R27
    /// disabled (ablation) the value half keeps its original integer —
    /// exactly the information/anonymity trade-off of §4.5.
    fn try_community(&mut self, token: &str, stats: &mut AnonymizationStats) -> Option<String> {
        let (a, v) = token.split_once(':')?;
        if !a.bytes().all(|b| b.is_ascii_digit()) || !v.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let asn: u16 = a.parse().ok()?;
        let value: u16 = v.parse().ok()?;
        stats.communities_mapped += 1;
        if confanon_asnanon::map::is_public(asn) {
            self.record.asns.insert(asn.to_string());
        }
        let ma = self.asn_map().map(asn);
        let mv = if self.enabled(RuleId::R27CommunityValueHashing) {
            stats.fire(RuleId::R27CommunityValueHashing);
            self.community.map_value(value)
        } else {
            value
        };
        self.emitted.insert(ma.to_string());
        self.emitted.insert(mv.to_string());
        Some(format!("{ma}:{mv}"))
    }

    /// Rewrites the regexp occupying tokens `from..` (joined by spaces).
    fn rewrite_regex_tokens(
        &mut self,
        from: usize,
        texts: &[&str],
        out: &mut [Option<String>],
        stats: &mut AnonymizationStats,
        domain: RegexDomain,
    ) {
        let rule = match domain {
            RegexDomain::AsPath => RuleId::R09AsPathAccessListRegex,
            RegexDomain::Community => RuleId::R12CommunityListPattern,
        };
        if !self.enabled(rule) || from >= texts.len() {
            return;
        }
        let pattern = texts[from..].join(" ");
        let opts = RewriteOptions {
            compact: self.cfg.compact_regexps,
        };
        let rewritten = match domain {
            RegexDomain::AsPath => rewrite_aspath_regex_full(&pattern, self.asn_map(), opts),
            RegexDomain::Community => {
                rewrite_community_regex_full(&pattern, &self.community, opts)
            }
        };
        stats.fire(rule);
        match rewritten {
            Ok(r) => {
                // Record exactly the public ASNs the original pattern
                // named (R28): the pre-image language of its atoms.
                if self.enabled(RuleId::R28LeakHighlighting) {
                    for asn in &r.public_asns_named {
                        self.record.asns.insert(asn.to_string());
                    }
                }
                stats.regexps_rewritten += 1;
                // Every digit run the rewritten pattern contains is an
                // emitted image.
                let mut run = String::new();
                for c in r.pattern.chars().chain(std::iter::once('|')) {
                    if c.is_ascii_digit() {
                        run.push(c);
                    } else if !run.is_empty() {
                        self.emitted.insert(std::mem::take(&mut run));
                    }
                }
                out[from] = Some(r.pattern);
                for slot in out.iter_mut().take(texts.len()).skip(from + 1) {
                    *slot = Some(String::new());
                }
            }
            Err(_) => {
                // Conservative fallback: an unparseable pattern is hashed
                // whole. Structure dies, anonymity survives.
                stats.regexps_fallback_hashed += 1;
                out[from] = Some(self.hash_emit(&pattern));
                for slot in out.iter_mut().take(texts.len()).skip(from + 1) {
                    *slot = Some(String::new());
                }
            }
        }
    }

    /// `ip community-list … permit <patterns…>`: literal communities map
    /// directly; anything else is treated as one community regexp.
    fn community_list_tokens(
        &mut self,
        from: usize,
        texts: &[&str],
        out: &mut [Option<String>],
        stats: &mut AnonymizationStats,
    ) {
        if !self.enabled(RuleId::R12CommunityListPattern) || from >= texts.len() {
            return;
        }
        let all_literals = texts[from..]
            .iter()
            .all(|t| self.community.map_token(t).is_some());
        if all_literals {
            for i in from..texts.len() {
                // `all_literals` proved each token maps; if the map ever
                // disagrees, hashing the token whole is still safe
                // (fail-closed: never emit the original).
                let mapped = match self.try_community(texts[i], stats) {
                    Some(m) => m,
                    None => self.hash_emit(texts[i]),
                };
                stats.fire(RuleId::R12CommunityListPattern);
                out[i] = Some(mapped);
            }
        } else {
            self.rewrite_regex_tokens(from, texts, out, stats, RegexDomain::Community);
        }
    }

    /// Hashes the token at `i` as a whole (no segmentation), recording it.
    fn hash_whole(
        &mut self,
        i: usize,
        texts: &[&str],
        out: &mut [Option<String>],
        stats: &mut AnonymizationStats,
        rule: RuleId,
    ) {
        if !self.enabled(rule) || i >= texts.len() {
            return;
        }
        stats.fire(rule);
        self.record_word(texts[i]);
        out[i] = Some(self.hash_emit(texts[i]));
    }

    /// Hashes the secret token at `i` (R20).
    fn hash_secret(
        &mut self,
        i: usize,
        texts: &[&str],
        out: &mut [Option<String>],
        stats: &mut AnonymizationStats,
    ) {
        if !self.enabled(RuleId::R20SecretsAndKeys) || i >= texts.len() {
            return;
        }
        stats.fire(RuleId::R20SecretsAndKeys);
        stats.secrets_hashed += 1;
        self.record_word(texts[i]);
        out[i] = Some(self.hash_emit(texts[i]));
    }

    /// Hashes every token following a `password`/`secret`/`key` keyword,
    /// skipping a single-digit encryption-type code (`password 7 ABCDEF`).
    fn hash_after_keyword(
        &mut self,
        lower: &[&str],
        texts: &[&str],
        out: &mut [Option<String>],
        stats: &mut AnonymizationStats,
    ) {
        if !self.enabled(RuleId::R20SecretsAndKeys) {
            return;
        }
        #[allow(clippy::needless_range_loop)] // indexes three slices
        for i in 0..lower.len() {
            if matches!(lower[i], "password" | "secret" | "key" | "md5") {
                let mut j = i + 1;
                if j < texts.len() && texts[j].len() == 1 && texts[j].chars().all(|c| c.is_ascii_digit()) {
                    j += 1; // encryption type code
                }
                if j < texts.len() && out[j].is_none() {
                    stats.fire(RuleId::R20SecretsAndKeys);
                    stats.secrets_hashed += 1;
                    self.record_word(texts[j]);
                    out[j] = Some(self.hash_emit(texts[j]));
                }
            }
        }
    }

    fn record_word(&mut self, word: &str) {
        if self.enabled(RuleId::R28LeakHighlighting) {
            // Record the alphabetic segments (the scanner matches runs).
            for seg in segment(word) {
                if let Segment::Alpha(a) = seg {
                    if !self.cfg.pass_list.contains(a) {
                        self.record_alpha(a);
                    }
                }
            }
        }
    }

    /// Records one already-segmented, non-pass-list alphabetic run,
    /// skipping the lowercase allocation when the run is already
    /// lowercase and present (the common repeat case on the hot path).
    fn record_alpha(&mut self, a: &str) {
        if a.bytes().any(|b| b.is_ascii_uppercase()) {
            self.record.words.insert(a.to_ascii_lowercase());
        } else if !self.record.words.contains(a) {
            self.record.words.insert(a.to_string());
        }
    }

    /// Keyed re-digiting of a phone number: digits map to digits, other
    /// characters (quotes, dashes) survive.
    fn map_phone(&self, token: &str) -> String {
        let digest = self.hasher.digest(&format!("phone:{token}"));
        let mut di = 0usize;
        token
            .chars()
            .map(|c| {
                if c.is_ascii_digit() {
                    let d = digest[di % digest.len()] % 10;
                    di += 1;
                    char::from(b'0' + d)
                } else {
                    c
                }
            })
            .collect()
    }

    /// The zero-copy twin of [`Anonymizer::anonymize_token`]: identical
    /// rule checks, mapping-state mutations, and counters, but returns
    /// `None` — no allocation — when the token is kept verbatim (pure
    /// numbers, pass-listed words, disabled-rule keeps). During
    /// discovery it always returns `None`: output is discarded, and the
    /// side effects above are all that matters.
    fn rewrite_token(&mut self, tok: &str, stats: &mut AnonymizationStats) -> Option<String> {
        // First-byte dispatch: every numeric form below — IPv4 literal,
        // prefix token, classic and large community, bare integer — is
        // strict-decimal and therefore starts with a digit, and the IPv6
        // forms require a ':' somewhere in the token. One byte-class
        // table load lets the common keyword token (`interface`,
        // `neighbor`, …) skip every parse attempt wholesale; the order of
        // checks inside each arm is the legacy order, so rule fires and
        // side effects are unchanged.
        let first = tok.as_bytes().first().copied().unwrap_or(b' ');
        if BYTE_CLASS[usize::from(first)] & CLASS_DIGIT != 0 {
            // R22/R24/R25: IPv4 literal.
            if let Ok(ip) = tok.parse::<Ip>() {
                if self.enabled(RuleId::R22Ipv4Literal) {
                    let mapped = self.map_ip(ip, stats);
                    return self.emit.then(|| mapped.to_string());
                }
                return None;
            }
            // R23: prefix token `a.b.c.d/len`.
            if let Some((addr, len)) = tok.split_once('/') {
                if let (Ok(ip), Ok(len)) = (addr.parse::<Ip>(), len.parse::<u8>()) {
                    if len <= 32 && self.enabled(RuleId::R23PrefixToken) {
                        stats.fire(RuleId::R23PrefixToken);
                        let mapped = self.map_ip(ip, stats);
                        return self.emit.then(|| format!("{mapped}/{len}"));
                    }
                    return None;
                }
            }
            // R14: bare community attribute — classic `asn:value` or RFC
            // 8092 large `ga:d1:d2`.
            if self.enabled(RuleId::R14CommunityAttributeToken) {
                if let Some(mapped) = self.try_community(tok, stats) {
                    stats.fire(RuleId::R14CommunityAttributeToken);
                    return Some(mapped);
                }
                if let Some(mapped) = self.large_community.map_token(tok) {
                    stats.fire(RuleId::R14CommunityAttributeToken);
                    stats.communities_mapped += 1;
                    if let Some(ga) = tok.split(':').next() {
                        if ga.parse::<u32>().is_ok_and(confanon_asnanon::is_public32) {
                            self.record.asns.insert(ga.to_string());
                        }
                    }
                    for field in mapped.split(':') {
                        self.emitted.insert(field.to_string());
                    }
                    return Some(mapped);
                }
            }
            if tok.contains(':') {
                if let Some(result) = self.rewrite_ipv6_forms(tok, stats) {
                    return result;
                }
            }
            // Simple integers are generally not anonymized (§4.1): kept
            // verbatim with no clone.
            if tok.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
        } else if tok.contains(':') {
            if let Some(result) = self.rewrite_ipv6_forms(tok, stats) {
                return result;
            }
        }
        // R01/R02/R26: segmentation, pass-list, hash.
        if !self.enabled(RuleId::R26TokenHashing) {
            return None;
        }
        // Fast path: a token that is one pure alphabetic run (most IOS
        // keywords) needs no segment vector — one byte-class scan and
        // one pass-list lookup decide it.
        if tok.bytes().all(|b| BYTE_CLASS[b as usize] & CLASS_ALPHA != 0) {
            stats.fire(RuleId::R01SplitAlphaRuns);
            if self.cfg.pass_list.contains(tok) {
                stats.segments_passed += 1;
                return None;
            }
            stats.fire(RuleId::R26TokenHashing);
            stats.segments_hashed += 1;
            if self.enabled(RuleId::R28LeakHighlighting) {
                self.record_alpha(tok);
            }
            return self.emit.then(|| self.hash_emit(tok));
        }
        let segs = segment(tok);
        if segs.len() > 1 {
            // R02: punctuation split the word into independently checked
            // segments (`cr1.lax.foo.com`, `Ethernet0/0`).
            stats.fire(RuleId::R02SplitPunctuation);
        }
        // Pass 1 — classification and side effects only: decide whether
        // any alphabetic segment actually hashes. If none does, the
        // token is byte-identical and no assembly happens at all.
        let mut any_hashed = false;
        for seg in &segs {
            if let Segment::Alpha(a) = seg {
                if self.cfg.pass_list.contains(a) {
                    stats.segments_passed += 1;
                } else {
                    any_hashed = true;
                    stats.fire(RuleId::R26TokenHashing);
                    stats.segments_hashed += 1;
                    // `a` is already one non-pass-list alpha segment, so
                    // the re-segmentation in `record_word` is skipped.
                    if self.enabled(RuleId::R28LeakHighlighting) {
                        self.record_alpha(a);
                    }
                }
            }
        }
        stats.fire(RuleId::R01SplitAlphaRuns);
        if !any_hashed || !self.emit {
            return None;
        }
        // Pass 2 — assembly, emit mode only.
        let mut outb = String::with_capacity(tok.len());
        for seg in segs {
            match seg {
                Segment::Other(o) => outb.push_str(o),
                Segment::Alpha(a) => {
                    if self.cfg.pass_list.contains(a) {
                        outb.push_str(a);
                    } else {
                        let h = self.hash_emit(a);
                        outb.push_str(&h);
                    }
                }
            }
        }
        Some(outb)
    }

    /// R22/R23 for IPv6 (post-paper extension), shared by both arms of
    /// [`Anonymizer::rewrite_token`]'s first-byte dispatch. Returns
    /// `Some(result)` when the token matched an IPv6 form — `result` is
    /// the emit-gated replacement to return as-is — and `None` when the
    /// token is not IPv6-shaped (caller falls through to the next check).
    fn rewrite_ipv6_forms(
        &mut self,
        tok: &str,
        stats: &mut AnonymizationStats,
    ) -> Option<Option<String>> {
        if !self.enabled(RuleId::R22Ipv4Literal) {
            return None;
        }
        if let Ok(ip6) = tok.parse::<Ip6>() {
            let mapped = self.map_ip6(ip6, stats);
            return Some(self.emit.then(|| mapped.to_string()));
        }
        if let Some((addr, len)) = tok.rsplit_once('/') {
            if let (Ok(ip6), Ok(len)) = (addr.parse::<Ip6>(), len.parse::<u8>()) {
                if len <= 128 {
                    stats.fire(RuleId::R23PrefixToken);
                    let mapped = self.map_ip6(ip6, stats);
                    return Some(self.emit.then(|| format!("{mapped}/{len}")));
                }
            }
        }
        None
    }

    /// The generic per-token transformation: addresses, prefixes,
    /// community literals, numbers, and the segmentation + pass-list +
    /// hash fallback. This is the pre-refactor always-allocating form,
    /// kept for the `disable_zero_copy` differential baseline; the hot
    /// path uses [`Anonymizer::rewrite_token`].
    fn anonymize_token(&mut self, tok: &str, stats: &mut AnonymizationStats) -> String {
        // R22/R24/R25: IPv4 literal.
        if let Ok(ip) = tok.parse::<Ip>() {
            if self.enabled(RuleId::R22Ipv4Literal) {
                let mapped = self.map_ip(ip, stats);
                return if self.emit { mapped.to_string() } else { String::new() };
            }
            return self.keep(tok);
        }
        // R23: prefix token `a.b.c.d/len`.
        if let Some((addr, len)) = tok.split_once('/') {
            if let (Ok(ip), Ok(len)) = (addr.parse::<Ip>(), len.parse::<u8>()) {
                if len <= 32 && self.enabled(RuleId::R23PrefixToken) {
                    stats.fire(RuleId::R23PrefixToken);
                    let mapped = self.map_ip(ip, stats);
                    return if self.emit {
                        format!("{mapped}/{len}")
                    } else {
                        String::new()
                    };
                }
                return self.keep(tok);
            }
        }
        // R14: bare community attribute — classic `asn:value` or RFC 8092
        // large `ga:d1:d2`.
        if self.enabled(RuleId::R14CommunityAttributeToken) {
            if let Some(mapped) = self.try_community(tok, stats) {
                stats.fire(RuleId::R14CommunityAttributeToken);
                return mapped;
            }
            if let Some(mapped) = self.large_community.map_token(tok) {
                stats.fire(RuleId::R14CommunityAttributeToken);
                stats.communities_mapped += 1;
                if let Some(ga) = tok.split(':').next() {
                    if ga
                        .parse::<u32>()
                        .is_ok_and(confanon_asnanon::is_public32)
                    {
                        self.record.asns.insert(ga.to_string());
                    }
                }
                for field in mapped.split(':') {
                    self.emitted.insert(field.to_string());
                }
                return mapped;
            }
        }
        // R22/R23 for IPv6 (post-paper extension): `2001:db8::1` and
        // `2001:db8::/32` tokens. Communities were ruled out above, so a
        // colon-bearing token that parses as IPv6 is one.
        if tok.contains(':') && self.enabled(RuleId::R22Ipv4Literal) {
            if let Ok(ip6) = tok.parse::<Ip6>() {
                let mapped = self.map_ip6(ip6, stats);
                return if self.emit { mapped.to_string() } else { String::new() };
            }
            if let Some((addr, len)) = tok.rsplit_once('/') {
                if let (Ok(ip6), Ok(len)) = (addr.parse::<Ip6>(), len.parse::<u8>()) {
                    if len <= 128 {
                        stats.fire(RuleId::R23PrefixToken);
                        let mapped = self.map_ip6(ip6, stats);
                        return if self.emit {
                            format!("{mapped}/{len}")
                        } else {
                            String::new()
                        };
                    }
                }
            }
        }
        // Simple integers are generally not anonymized (§4.1).
        if tok.bytes().all(|b| b.is_ascii_digit()) {
            return self.keep(tok);
        }
        // R01/R02/R26: segmentation, pass-list, hash.
        if !self.enabled(RuleId::R26TokenHashing) {
            return self.keep(tok);
        }
        let segs = segment(tok);
        if segs.len() > 1 {
            // R02: punctuation split the word into independently checked
            // segments (`cr1.lax.foo.com`, `Ethernet0/0`).
            stats.fire(RuleId::R02SplitPunctuation);
        }
        let mut outb = String::with_capacity(if self.emit { tok.len() } else { 0 });
        for seg in segs {
            match seg {
                Segment::Other(o) => {
                    if self.emit {
                        outb.push_str(o);
                    }
                }
                Segment::Alpha(a) => {
                    if self.cfg.pass_list.contains(a) {
                        stats.segments_passed += 1;
                        if self.emit {
                            outb.push_str(a);
                        }
                    } else {
                        stats.fire(RuleId::R26TokenHashing);
                        stats.segments_hashed += 1;
                        // `a` is already one non-pass-list alpha segment,
                        // so the re-segmentation in `record_word` is
                        // skipped.
                        if self.enabled(RuleId::R28LeakHighlighting) {
                            self.record_alpha(a);
                        }
                        if self.emit {
                            outb.push_str(&self.hash_emit(a));
                        }
                    }
                }
            }
        }
        stats.fire(RuleId::R01SplitAlphaRuns);
        outb
    }

    /// A token kept verbatim: cloned for emission, elided during
    /// discovery (the discovery pass discards all output text).
    fn keep(&self, tok: &str) -> String {
        if self.emit {
            tok.to_string()
        } else {
            String::new()
        }
    }

    /// Maps one address with recording and stats.
    fn map_ip(&mut self, ip: Ip, stats: &mut AnonymizationStats) -> Ip {
        if special_kind(ip).is_some()
            && self.enabled(RuleId::R25SpecialAddressPassthrough) {
                stats.fire(RuleId::R25SpecialAddressPassthrough);
                stats.ips_special_passthrough += 1;
                return ip;
            }
            // Ablation: treat as ordinary (this is precisely the bug the
            // rule exists to prevent; the validation suite catches it).
        stats.fire(RuleId::R22Ipv4Literal);
        if self.enabled(RuleId::R24SubnetAddressPreserve) && ip.0.trailing_zeros() >= 8 {
            // Subnet-address preservation applies to this mapping.
            stats.fire(RuleId::R24SubnetAddressPreserve);
        }
        stats.ips_mapped += 1;
        // Shard-scan observe mode: the image depends on shared trie
        // order, so defer it — along with the leak-record and emitted-set
        // entries, which are per-identifier, not per-occurrence — to the
        // canonical replay. The return value only feeds output assembly,
        // which discovery discards.
        if let Some(log) = self.observe.as_mut() {
            log.note_v4(ip);
            return ip;
        }
        self.journal.note(ObservedIp::V4(ip));
        if self.enabled(RuleId::R28LeakHighlighting) {
            self.record.ips.insert(ip.to_string());
        }
        let image = match self.cfg.ip_scheme {
            IpScheme::StructurePreserving => self.ip.anonymize(ip),
            IpScheme::Scramble => self.scramble.anonymize(ip),
        };
        self.emitted.insert(image.to_string());
        image
    }
}

impl Anonymizer {
    /// Maps one IPv6 address with recording and stats.
    fn map_ip6(&mut self, ip: Ip6, stats: &mut AnonymizationStats) -> Ip6 {
        if special6_kind(ip).is_some()
            && self.enabled(RuleId::R25SpecialAddressPassthrough) {
                stats.fire(RuleId::R25SpecialAddressPassthrough);
                stats.ips_special_passthrough += 1;
                return ip;
            }
        stats.fire(RuleId::R22Ipv4Literal);
        stats.ips6_mapped += 1;
        // See `map_ip`: trie-order-dependent and per-identifier work
        // defers to the replay.
        if let Some(log) = self.observe.as_mut() {
            log.note_v6(ip);
            return ip;
        }
        self.journal.note(ObservedIp::V6(ip));
        if self.enabled(RuleId::R28LeakHighlighting) {
            self.record.ips.insert(ip.to_string());
        }
        let image = self.ip6.anonymize(ip);
        self.emitted.insert(image.to_string());
        image
    }

    /// A clone prepared for one sharded-discovery worker: empty
    /// accumulators (so absorbing it back never double-counts) and an
    /// armed observation log (so its scans log trie insertions instead of
    /// performing them). Shares the keyed stateless maps and the
    /// enabled-rule set with `self`.
    pub(crate) fn observer(&self) -> Anonymizer {
        let mut a = self.clone();
        a.record = LeakRecord::default();
        a.emitted = std::collections::BTreeSet::new();
        a.total_stats = AnonymizationStats::default();
        a.prefilter_stats = PrefilterStats::default();
        a.rewrite_stats = RewriteStats::default();
        a.observe = Some(ObservationLog::default());
        a
    }

    /// One file of a shard scan: positions the observation log at
    /// `file_idx` and runs the full discovery pipeline over `text`.
    pub(crate) fn observe_file(&mut self, file_idx: u64, text: &str) -> AnonymizationStats {
        if let Some(log) = self.observe.as_mut() {
            log.begin_file(file_idx);
        }
        self.discover_config(text)
    }

    /// Folds a finished shard worker's order-independent accumulators
    /// into `self` (all commutative merges) and returns its observation
    /// log for the canonical replay.
    pub(crate) fn absorb_observer(&mut self, shard: Anonymizer) -> ObservationLog {
        self.record.merge(&shard.record);
        self.emitted.extend(shard.emitted);
        self.total_stats.merge(&shard.total_stats);
        self.prefilter_stats.absorb(&shard.prefilter_stats);
        self.rewrite_stats.absorb(&shard.rewrite_stats);
        shard.observe.unwrap_or_default()
    }

    /// Replays one observed identifier against the real mapping state:
    /// computes its image (mutating the trie exactly as the deferred
    /// `map_ip`/`map_ip6` call would have), records the original in the
    /// leak record, and records the emitted exclusion — each exactly
    /// once per identifier, where the sequential scan pays per
    /// occurrence. Called in canonical first-occurrence order.
    pub(crate) fn replay_observed(&mut self, obs: ObservedIp) {
        self.journal.note(obs);
        let (original, image) = match obs {
            ObservedIp::V4(ip) => (
                ip.to_string(),
                match self.cfg.ip_scheme {
                    IpScheme::StructurePreserving => self.ip.anonymize(ip).to_string(),
                    IpScheme::Scramble => self.scramble.anonymize(ip).to_string(),
                },
            ),
            ObservedIp::V6(ip) => (ip.to_string(), self.ip6.anonymize(ip).to_string()),
        };
        if self.enabled(RuleId::R28LeakHighlighting) {
            self.record.ips.insert(original);
        }
        self.emitted.insert(image);
    }

    /// Prefilter fast/slow/cache counters accumulated so far (summed in
    /// from shard workers after sharded discovery).
    pub fn prefilter_stats(&self) -> &PrefilterStats {
        &self.prefilter_stats
    }

    /// Borrow-or-own rewrite counters accumulated so far (emit-mode
    /// only; see [`RewriteStats`]).
    pub fn rewrite_stats(&self) -> &RewriteStats {
        &self.rewrite_stats
    }

    /// Takes (and resets) the accumulated rewrite counters — how the
    /// batch layer extracts a per-file delta from a rewrite worker.
    pub fn take_rewrite_stats(&mut self) -> RewriteStats {
        std::mem::take(&mut self.rewrite_stats)
    }

    /// The identifier journal: every distinct trie-mapped address in
    /// first-mapped order. Replaying it through a fresh anonymizer with
    /// the same secret rebuilds the mapping state exactly (persistent
    /// state rests on this; see `crate::state`).
    pub fn journal(&self) -> &[ObservedIp] {
        &self.journal.order
    }

    /// Replays a persisted identifier journal into this (fresh)
    /// anonymizer: rebuilds the tries through the original insertion
    /// sequence and re-populates the journal itself, the leak record's
    /// address entries, and the emitted-image set.
    pub fn replay_journal(&mut self, entries: &[ObservedIp]) {
        for &obs in entries {
            self.replay_observed(obs);
        }
    }

    /// Merges a persisted leak record (word/ASN entries have no trie
    /// state and are restored by merge, not replay).
    pub fn merge_leak_record(&mut self, record: &LeakRecord) {
        self.record.merge(record);
    }

    /// Merges persisted emitted-image exclusions.
    pub fn extend_emitted(&mut self, images: impl IntoIterator<Item = String>) {
        self.emitted.extend(images);
    }

    /// Folds an externally stored per-file stats block into the running
    /// totals — how a warm run accounts for files it skipped scanning.
    pub fn absorb_stats(&mut self, stats: &AnonymizationStats) {
        self.total_stats.merge(stats);
    }

    /// Folds externally stored prefilter path counts (per-line pure
    /// functions, so stored per-file counts sum exactly like a rescan).
    pub fn absorb_prefilter_counts(&mut self, fast_path_lines: u64, slow_path_lines: u64) {
        self.prefilter_stats.fast_path_lines += fast_path_lines;
        self.prefilter_stats.slow_path_lines += slow_path_lines;
    }

    /// Structure digests of the (v4, v6) tries — the post-replay
    /// integrity check for persisted state.
    pub fn trie_digests(&self) -> (u64, u64) {
        (self.ip.structure_digest(), self.ip6.structure_digest())
    }

    /// Domain-separated check value over every keyed permutation the
    /// anonymizer uses (ASN, community value, large-community halves),
    /// as a hex string. Persisted state stores it so a load under
    /// different permutation parameters is refused even if the secret
    /// fingerprint were to collide.
    pub fn perm_fingerprint(&self) -> String {
        let a = self.community.check_value();
        let b = self.large_community.check_value();
        format!("{a:016x}{b:016x}")
    }
}

/// Regexp domains for [`Anonymizer::rewrite_regex_tokens`].
#[derive(Clone, Copy)]
enum RegexDomain {
    AsPath,
    Community,
}

/// Truncates a banner header to `banner <type> <delim>` (drops any
/// same-line banner text).
fn banner_header_skeleton(line: &str) -> String {
    let toks = tokenize(line);
    if toks.len() < 3 {
        return line.trim_end().to_string();
    }
    let delim_tok = toks[2].text;
    let delim: String = if delim_tok.starts_with('^') && delim_tok.len() >= 2 {
        delim_tok[..2].to_string()
    } else {
        delim_tok.chars().take(1).collect()
    };
    format!("{} {} {}", toks[0].text, toks[1].text, delim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::FIGURE1_CONFIG;

    fn run(text: &str) -> AnonymizedConfig {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"test-secret".to_vec()));
        a.anonymize_config(text)
    }

    #[test]
    fn figure1_end_to_end_removes_identity() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"test-secret".to_vec()));
        let out = a.anonymize_config(FIGURE1_CONFIG);
        // Identity words: these cannot appear even as substrings (the
        // hash alphabet is hex, which cannot spell any of them).
        for leak in ["foo", "lax", "uunet", "sfo", "xxx", "main st"] {
            assert!(
                !out.text.to_ascii_lowercase().contains(leak),
                "{leak:?} survived:\n{}",
                out.text
            );
        }
        // Numbers and addresses: whole-token scan via the §6.1 scanner,
        // excluding legitimate permutation images (a mapped ASN may
        // coincide with another recorded ASN's digits).
        let rec = a.leak_record().clone();
        let mut images: Vec<String> = rec
            .asns
            .iter()
            .map(|s| a.asn_map().map(s.parse().unwrap()).to_string())
            .collect();
        // Legitimate community-value images from the rewritten
        // `701:7[1-5]..` pattern: values 7100..=7599 permute into the
        // output, and any of them may collide with a recorded ASN's
        // digits. The §6.1 reviewer dismisses those from context.
        images.extend((7100u16..=7599).map(|v| a.community_map().map_value(v).to_string()));
        let report = crate::leak::LeakScanner::scan_excluding(&rec, images, &out.text);
        assert!(report.is_clean(), "leaks: {:#?}", report.leaks);
    }

    #[test]
    fn figure1_preserves_structure() {
        let out = run(FIGURE1_CONFIG);
        // Keywords survive.
        for kept in [
            "interface Ethernet0",
            "router bgp",
            "redistribute rip",
            "route-map",
            "255.255.255.0",
            "router rip",
            "access-list 143 permit ip",
        ] {
            assert!(out.text.contains(kept), "{kept:?} lost:\n{}", out.text);
        }
    }

    #[test]
    fn referential_integrity_of_route_map_names() {
        let out = run(FIGURE1_CONFIG);
        // `UUNET-import` appears at a use (line 19) and a definition
        // (lines 22, 25); after anonymization the same hashed form must
        // appear at all three places.
        let hashed: Vec<&str> = out
            .text
            .lines()
            .filter(|l| l.contains("route-map") && l.contains("-import"))
            .collect();
        assert!(hashed.len() >= 3, "{:?}", hashed);
        let name = hashed[0]
            .split_whitespace()
            .find(|t| t.ends_with("-import"))
            .unwrap();
        for l in &hashed {
            assert!(l.contains(name), "inconsistent name in {l}");
        }
    }

    #[test]
    fn subnet_contains_relationship_preserved() {
        // Figure 1: RIP's `network 1.0.0.0` must still contain the
        // interface address post-anonymization.
        let out = run(FIGURE1_CONFIG);
        let mut rip_net = None;
        let mut eth_addr = None;
        for l in out.text.lines() {
            if let Some(rest) = l.trim().strip_prefix("network ") {
                rip_net = Some(rest.trim().parse::<Ip>().unwrap());
            }
            if l.trim().starts_with("ip address") {
                let t: Vec<&str> = l.split_whitespace().collect();
                if eth_addr.is_none() {
                    eth_addr = Some(t[2].parse::<Ip>().unwrap());
                }
            }
        }
        let (net, host) = (rip_net.unwrap(), eth_addr.unwrap());
        assert!(
            confanon_netprim::Prefix::new(net, 8).contains(host),
            "{net} no longer contains {host}"
        );
    }

    #[test]
    fn masks_and_wildcards_survive() {
        let out = run(" ip address 1.2.3.4 255.255.255.252\naccess-list 1 permit 1.2.3.0 0.0.0.255\n");
        assert!(out.text.contains("255.255.255.252"));
        assert!(out.text.contains("0.0.0.255"));
        assert!(!out.text.contains("1.2.3.4"));
    }

    #[test]
    fn asn_consistency_across_lines_and_files() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"s".to_vec()));
        let o1 = a.anonymize_config("router bgp 701\n");
        let o2 = a.anonymize_config(" neighbor 9.9.9.9 remote-as 701\n");
        let asn1 = o1.text.split_whitespace().last().unwrap().to_string();
        let asn2 = o2.text.split_whitespace().last().unwrap().to_string();
        assert_eq!(asn1, asn2);
        assert_ne!(asn1, "701");
    }

    #[test]
    fn private_asns_unchanged() {
        let out = run("router bgp 65001\n");
        assert!(out.text.contains("65001"));
    }

    #[test]
    fn comments_stripped_and_counted() {
        let out = run("! Foo Corp core router\nhostname r1\n");
        assert!(out.text.starts_with("!\n"));
        assert!(!out.text.to_lowercase().contains("foo"));
        assert_eq!(out.stats.comment_lines_stripped, 1);
        assert_eq!(out.stats.words_removed_as_comments, 4);
    }

    #[test]
    fn banner_blocks_emptied() {
        let out = run("banner motd ^C\nWelcome to FooNet!\ncall 555-1234\n^C\nhostname r1\n");
        assert!(!out.text.contains("FooNet"));
        assert!(!out.text.contains("555"));
        assert!(out.text.contains("banner motd ^C"));
        assert_eq!(out.stats.banner_lines_dropped, 2);
    }

    #[test]
    fn descriptions_dropped() {
        let out = run("interface e0\n description Foo Corp LAX office\n ip address 1.1.1.1 255.0.0.0\n");
        assert!(!out.text.to_lowercase().contains("foo"));
        assert!(!out.text.contains("description"));
        assert_eq!(out.stats.freetext_lines_dropped, 1);
    }

    #[test]
    fn snmp_and_passwords_hashed() {
        let out = run("snmp-server community s3cr3tstring RO\nenable secret 5 $1$abcd$efgh\nusername admin password 7 094F471A1A0A\n");
        assert!(!out.text.contains("s3cr3tstring"));
        assert!(!out.text.contains("$1$abcd$efgh"));
        assert!(!out.text.contains("094F471A1A0A"));
        assert!(!out.text.contains("admin"));
        assert!(out.stats.secrets_hashed >= 3);
    }

    #[test]
    fn dialer_string_redigited() {
        let out = run("dialer string 14155551234\n");
        let mapped = out.text.split_whitespace().last().unwrap();
        assert_ne!(mapped, "14155551234");
        assert_eq!(mapped.len(), 11);
        assert!(mapped.bytes().all(|b| b.is_ascii_digit()));
        assert_eq!(out.stats.phone_numbers_mapped, 1);
    }

    #[test]
    fn hostname_hashes_whole_not_per_segment() {
        let out = run("hostname cr1.lax.foo.com\n");
        let arg = out.text.split_whitespace().last().unwrap();
        assert!(!arg.contains('.'), "domain structure survived: {arg}");
        assert!(arg.starts_with('h'));
    }

    #[test]
    fn interface_types_survive_segmentation() {
        let out = run("interface Serial1/0.5 point-to-point\n");
        assert!(out.text.contains("Serial1/0.5"));
    }

    #[test]
    fn aspath_regexp_rewritten_language_preserved() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"s".to_vec()));
        let out = a.anonymize_config("ip as-path access-list 50 permit (_1239_|_70[2-5]_)\n");
        let line = out.text.lines().next().unwrap();
        let pattern = line
            .splitn(6, ' ')
            .nth(5)
            .unwrap()
            .trim();
        let re = confanon_regexlang::Regex::compile(pattern).unwrap();
        let m = a.asn_map();
        for asn in [1239u16, 702, 703, 704, 705] {
            assert!(
                re.is_match(&m.map(asn).to_string()),
                "image of {asn} rejected by {pattern}"
            );
        }
        assert!(!re.is_match(&m.map(700).to_string()));
        assert_eq!(out.stats.regexps_rewritten, 1);
    }

    #[test]
    fn set_community_mapped() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"s".to_vec()));
        let out = a.anonymize_config(" set community 701:120\n");
        assert!(!out.text.contains("701:120"));
        let tok = out.text.split_whitespace().last().unwrap();
        let (asn, val) = tok.split_once(':').unwrap();
        assert_eq!(asn, a.asn_map().map(701).to_string());
        assert!(val.parse::<u16>().is_ok());
    }

    #[test]
    fn disabled_rule_leaks_and_is_recorded_elsewhere() {
        let cfg = AnonymizerConfig::new(b"s".to_vec()).without_rule(RuleId::R07NeighborRemoteAs);
        let mut a = Anonymizer::new(cfg);
        let out = a.anonymize_config(" neighbor 9.9.9.9 remote-as 701\n");
        assert!(out.text.contains("701"), "ablated rule must leak");
    }

    #[test]
    fn leak_record_populates() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"s".to_vec()));
        a.anonymize_config(
            "router bgp 1111\n neighbor 12.126.236.17 remote-as 701\nhostname cr1.foo.com\n",
        );
        let rec = a.leak_record();
        assert!(rec.asns.contains("1111"));
        assert!(rec.asns.contains("701"));
        assert!(rec.ips.contains("12.126.236.17"));
        assert!(rec.words.contains("foo"));
    }

    #[test]
    fn idempotent_keywords_line_unchanged() {
        // A line consisting purely of pass-list keywords and plain
        // numbers must come through byte-identical.
        let line = " ip route 0.0.0.0 0.0.0.0 permanent\n";
        let out = run(line);
        assert_eq!(out.text, line);
    }

    #[test]
    fn stats_totals_accumulate_across_configs() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"s".to_vec()));
        a.anonymize_config("hostname r1\n");
        a.anonymize_config("hostname r2\n");
        assert_eq!(a.total_stats().lines_total, 2);
    }
}

/// The owner-side record of the realized mapping, for audit by "a
/// colleague with access to the unanonymized configuration files" (§5).
/// Contains the original→image pairs for everything located; it is as
/// sensitive as the originals and must never leave the owner's side.
#[derive(Debug, Clone)]
pub struct MappingAudit {
    /// Public ASN mappings.
    pub asns: std::collections::BTreeMap<String, String>,
    /// Address mappings (ordinary addresses located in the configs).
    pub addresses: std::collections::BTreeMap<String, String>,
    /// Identity-word hash mappings.
    pub words: std::collections::BTreeMap<String, String>,
}

impl MappingAudit {
    /// The audit as JSON: three original→image maps, keys sorted.
    pub fn to_json(&self) -> confanon_testkit::json::Json {
        use confanon_testkit::json::Json;
        let map = |m: &std::collections::BTreeMap<String, String>| {
            let mut obj = Json::obj();
            for (k, v) in m {
                obj.set(k, v.as_str());
            }
            obj
        };
        Json::obj()
            .with("asns", map(&self.asns))
            .with("addresses", map(&self.addresses))
            .with("words", map(&self.words))
    }
}

impl Anonymizer {
    /// Exports the realized mapping for everything recorded so far.
    /// Requires `&mut self` because re-deriving address images walks (and
    /// may extend) the trie; the mapping itself is unchanged.
    pub fn mapping_audit(&mut self) -> MappingAudit {
        let asns = self
            .record
            .asns
            .iter()
            .filter_map(|a| {
                let asn: u16 = a.parse().ok()?;
                Some((a.clone(), self.asn_map().map(asn).to_string()))
            })
            .collect();
        let ips: Vec<Ip> = self
            .record
            .ips
            .iter()
            .filter_map(|s| s.parse().ok())
            .collect();
        let addresses = ips
            .into_iter()
            .map(|ip| {
                let image = match self.cfg.ip_scheme {
                    IpScheme::StructurePreserving => self.ip.anonymize(ip),
                    IpScheme::Scramble => self.scramble.anonymize(ip),
                };
                (ip.to_string(), image.to_string())
            })
            .collect();
        let words = self
            .record
            .words
            .iter()
            .map(|w| (w.clone(), self.hasher.hash_token(w)))
            .collect();
        MappingAudit {
            asns,
            addresses,
            words,
        }
    }
}

#[cfg(test)]
mod audit_tests {
    use super::*;
    use crate::figure1::FIGURE1_CONFIG;

    #[test]
    fn audit_pairs_are_consistent_with_output() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"audit".to_vec()));
        let out = a.anonymize_config(FIGURE1_CONFIG);
        let audit = a.mapping_audit();
        // Every original is recorded with an image that appears in the
        // output (addresses and ASNs; words map to hash prefixes).
        assert!(audit.asns.contains_key("701"));
        assert!(audit.addresses.contains_key("12.126.236.17"));
        for (orig, image) in audit.asns.iter().take(5) {
            assert_ne!(orig, image);
        }
        let mapped_peer = &audit.addresses["12.126.236.17"];
        assert!(out.text.contains(mapped_peer), "{mapped_peer}");
    }

    #[test]
    fn audit_is_stable_across_calls() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"audit".to_vec()));
        a.anonymize_config(FIGURE1_CONFIG);
        let first = a.mapping_audit();
        let second = a.mapping_audit();
        assert_eq!(first.asns, second.asns);
        assert_eq!(first.addresses, second.addresses);
        assert_eq!(first.words, second.words);
    }

    #[test]
    fn audit_covers_all_record_categories() {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"audit".to_vec()));
        a.anonymize_config("hostname r1.foo.com\nrouter bgp 701\n neighbor 1.2.3.4 remote-as 1239\n");
        let audit = a.mapping_audit();
        assert_eq!(audit.asns.len(), 2);
        assert!(audit.addresses.contains_key("1.2.3.4"));
        assert!(audit.words.contains_key("foo"));
        // Word images are the rendered hash forms used in the output.
        assert!(audit.words["foo"].starts_with('h'));
    }
}
