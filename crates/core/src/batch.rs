//! Parallel anonymization of a multi-router corpus under one keyed state,
//! with per-file fault isolation.
//!
//! §3.2 requires every identifier of a network to map consistently
//! *across* its files, which is why one [`Anonymizer`] processes the
//! whole network and why the paper notes the table-based IP scheme does
//! not parallelize trivially (unlike Xu's stateless scheme). The pipeline
//! here recovers the parallelism anyway, with the output guaranteed
//! byte-identical to a sequential run at any worker count:
//!
//! 1. **Discovery (sharded).** Workers scan disjoint contiguous file
//!    ranges with *observer* clones of the anonymizer: every rule runs
//!    and every order-independent accumulator (leak record, emitted
//!    images, statistics) fills in normally, but the order-dependent
//!    trie insertions are deferred — each worker logs the first corpus
//!    position of every address it would have mapped
//!    ([`crate::discover::ObservationLog`]). The shard logs merge
//!    commutatively (min position per address) and one canonical replay,
//!    sorted by position, then drives the real tries through exactly the
//!    insertion sequence a sequential scan of the whole corpus would
//!    have produced. A `jobs <= 1` pipeline (or one pinned by
//!    [`BatchPipeline::with_sequential_discovery`]) skips the machinery
//!    and scans sequentially via [`Anonymizer::discover_config`]; both
//!    modes warm byte-identical state.
//! 2. **Rewrite (clone workers).** Each worker takes a clone of the
//!    warmed anonymizer and re-emits files. Every mapping the emit pass
//!    needs already exists, so workers only perform pure lookups and
//!    stateless keyed hashes; no cross-thread state is shared and no
//!    insertion order can differ. A single-job run uses the same two
//!    passes (with one inline worker), so byte output *and* failure
//!    reports are identical at every `--jobs` value.
//!
//! Byte-identity follows from the mappings being *sticky*: once an
//! address (or any identifier) has an image, re-anonymizing it returns
//! the same image without mutating state, and the discovery pass creates
//! all images in exactly the order the sequential run would have.
//!
//! ## Fault isolation
//!
//! A corpus of a thousand files must not lose nine hundred ninety-nine of
//! them to one hostile input. Each per-file pass runs inside
//! [`catch_unwind`]: a panic is converted into a [`BatchFailure`] record
//! (file name, phase, panic message) and the file's output is withheld —
//! fail closed — while every other file emits the bytes it would have
//! emitted anyway. That stronger claim holds because a mid-file
//! discovery panic leaves the same partial per-file contributions in
//! every mode (an observer shard keeps the observations logged before
//! the panic, exactly mirroring the partial trie mutations a sequential
//! scan would have kept) and the rewrite pass is a pure function of the
//! warmed state; a worker whose clone panicked discards it and
//! re-clones before taking more work. Mutex poisoning from a contained
//! panic is likewise recovered: slot writes are index-disjoint, so a
//! poisoned lock holds no broken invariant.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use confanon_obs::{Clock, ObsShard};

use crate::anonymizer::{Anonymizer, AnonymizerConfig};
use crate::discover::ObservationLog;
use crate::error::{BatchFailure, BatchPhase};
use crate::fsx::DurabilityStats;
use crate::stats::{AnonymizationStats, RewriteStats};

/// One input file of a batch: a display name and its configuration text.
#[derive(Debug, Clone)]
pub struct BatchInput {
    /// Name used for reporting (typically the relative file path).
    pub name: String,
    /// The raw configuration text.
    pub text: String,
}

/// One anonymized file of a batch, in input order.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// The input's display name.
    pub name: String,
    /// Anonymized configuration text.
    pub text: String,
    /// Per-file rule counters.
    pub stats: AnonymizationStats,
    /// Borrow-or-own accounting for this file's emit pass. Carried
    /// separately from `stats` (which is pinned byte-identical between
    /// the discovery and emit passes); zero when the legacy
    /// `disable_zero_copy` path ran.
    pub rewrite: RewriteStats,
}

/// What one file's discovery pass contributed to the shared state's
/// order-independent accumulators: its per-file statistics and its
/// prefilter path counts (pure functions of the file's lines). Persisted
/// state stores one of these per file so an incremental run can skip the
/// file entirely and still report deterministic metrics byte-identical
/// to a cold run over the same corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileDiscovery {
    /// The per-file counters [`Anonymizer::discover_config`] returned.
    pub stats: AnonymizationStats,
    /// Prefilter fast-path lines this file contributed.
    pub prefilter_fast: u64,
    /// Prefilter slow-path lines this file contributed.
    pub prefilter_slow: u64,
}

/// The whole-corpus result.
pub struct BatchReport {
    /// Per-file outputs for every file that survived both passes, in
    /// input order. Skipped files (resume) emit no output.
    pub outputs: Vec<BatchOutput>,
    /// Files whose processing panicked (contained), in input order.
    /// Their outputs are withheld.
    pub failures: Vec<BatchFailure>,
    /// Files whose rewrite was skipped (`--resume` verified their
    /// released bytes already match), in input order.
    pub skipped: Vec<String>,
    /// Per-file discovery contributions, keyed by input name: freshly
    /// scanned files record what discovery measured; prewarmed files
    /// (incremental runs) echo back their stored contributions. Files
    /// whose discovery panicked have no entry.
    pub discoveries: BTreeMap<String, FileDiscovery>,
    /// Aggregate counters across the emitted outputs.
    pub totals: AnonymizationStats,
    /// Aggregate borrow-or-own accounting across the emitted outputs
    /// (the sum of each output's `rewrite` block).
    pub rewrite: RewriteStats,
    /// Worker threads used for the rewrite pass.
    pub jobs: usize,
    /// Durability counters for the run's published artifacts. The
    /// pipeline itself performs no I/O; the publisher that emits the
    /// report's outputs merges its counters in.
    pub durability: DurabilityStats,
    /// The run's observability shard: phase/per-file spans plus
    /// discovery-pass counters and histograms. The `phase.discover.*`
    /// counters are deterministic across `--jobs`, discovery modes, and
    /// resumed-vs-one-shot runs, because discovery always covers the
    /// whole corpus and its counter merges are commutative sums;
    /// shard-layout-dependent values (shard count, prefilter cache hits)
    /// report under the `discovery.*` prefix, which the metrics document
    /// files in its timing section.
    pub obs: ObsShard,
}

/// Renders a contained panic payload for the failure report.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// A corpus anonymizer: one keyed state, many files, optional
/// parallelism with sequential-identical output and per-file panic
/// containment.
pub struct BatchPipeline {
    anonymizer: Anonymizer,
    jobs: usize,
    clock: Clock,
    sequential_discovery: bool,
}

impl BatchPipeline {
    /// Creates a pipeline over one owner secret. `jobs` is the worker
    /// count for the discovery and rewrite passes; `0` means the logical
    /// core count, and values above the corpus size are clamped to one
    /// worker per file.
    pub fn new(cfg: AnonymizerConfig, jobs: usize) -> BatchPipeline {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        BatchPipeline {
            anonymizer: Anonymizer::new(cfg),
            jobs,
            clock: Clock::new(),
            sequential_discovery: false,
        }
    }

    /// Puts the pipeline's observability on the caller's run timeline
    /// (or strips it entirely with [`Clock::disabled`] — the overhead
    /// benchmark's baseline).
    pub fn with_clock(mut self, clock: Clock) -> BatchPipeline {
        self.clock = clock;
        self
    }

    /// Pins the discovery pass to the sequential scan even when
    /// `jobs > 1`. Output is byte-identical either way (that equivalence
    /// is property-tested); this switch exists for the differential
    /// tests and the `--bench-json` discovery benchmark, which measure
    /// the two modes against each other.
    pub fn with_sequential_discovery(mut self, sequential: bool) -> BatchPipeline {
        self.sequential_discovery = sequential;
        self
    }

    /// The warmed anonymizer (for audits: leak record, emitted
    /// exclusions, mapping audit). Meaningful after [`Self::run`].
    pub fn anonymizer(&self) -> &Anonymizer {
        &self.anonymizer
    }

    /// Mutable access to the pipeline's anonymizer, so a persisted state
    /// can be restored into it *before* the run (see
    /// [`crate::state::AnonState::restore_into`]). Restoring after
    /// discovery has begun would fork the insertion order the mappings
    /// depend on; callers restore first, then [`Self::run_incremental`].
    pub fn anonymizer_mut(&mut self) -> &mut Anonymizer {
        &mut self.anonymizer
    }

    /// Consumes the pipeline, returning the warmed anonymizer.
    pub fn into_anonymizer(self) -> Anonymizer {
        self.anonymizer
    }

    /// Anonymizes the corpus. Output order matches input order and the
    /// bytes are identical for every `jobs` value; files that panic are
    /// reported in [`BatchReport::failures`] instead of aborting the run.
    pub fn run(&mut self, inputs: &[BatchInput]) -> BatchReport {
        self.run_skipping(inputs, &BTreeSet::new())
    }

    /// [`Self::run`] with a resume skip set. Discovery still covers the
    /// *whole* corpus in input order — the shared mapping state is
    /// order-dependent, so a resumed run must perform the identical
    /// sequence of mutations an uninterrupted run would — but files in
    /// `skip` (their released bytes already verified on disk) are not
    /// re-emitted. Byte-identity of the re-emitted files follows: the
    /// warmed state is the same, and rewrite is a pure function of it.
    pub fn run_skipping(&mut self, inputs: &[BatchInput], skip: &BTreeSet<String>) -> BatchReport {
        self.run_incremental(inputs, skip, &BTreeMap::new())
    }

    /// [`Self::run_skipping`] with a prewarmed-discovery map: files whose
    /// name has an entry are *not* scanned at all — the run trusts that
    /// their identifier contributions are already present in the
    /// anonymizer (restored from persisted state via journal replay) and
    /// synthesizes their deterministic per-file counters from the stored
    /// [`FileDiscovery`] instead, so the metrics document stays
    /// byte-identical to a cold run over the same corpus. Discovery of
    /// the remaining files runs in corpus order (sequential or sharded),
    /// observing with their *original* corpus positions so the canonical
    /// replay order matches the cold run's first-occurrence order.
    pub fn run_incremental(
        &mut self,
        inputs: &[BatchInput],
        skip: &BTreeSet<String>,
        prewarmed: &BTreeMap<String, FileDiscovery>,
    ) -> BatchReport {
        let mut obs = ObsShard::new(self.clock);

        // Pass 1 — discovery with per-file containment, sequential or
        // sharded (the warmed state is byte-identical either way; the
        // determinism suite pins that equivalence). The partial mapping
        // state a mid-file panic leaves behind is identical at any job
        // count, so downstream emission stays deterministic. The
        // counters and histograms recorded here inherit that determinism
        // (resume skip sets only affect the rewrite pass), which is what
        // lets the metrics document put them in its deterministic
        // section.
        let t_discover = obs.span_start();
        let mut failed: Vec<Option<BatchFailure>> = vec![None; inputs.len()];
        let mut discoveries: BTreeMap<String, FileDiscovery> = BTreeMap::new();
        self.discover_pass(inputs, prewarmed, &mut failed, &mut obs, &mut discoveries);
        obs.span_end("discover", "phase", 0, t_discover);

        // Prefilter path counters are pure functions of line content —
        // deterministic across job counts and discovery modes — so they
        // live under the deterministic `phase.discover.` prefix. Cache
        // hit counts vary with shard layout (each shard warms its own
        // cache), so they report under the timing-section `discovery.`
        // prefix instead. Snapshot now: rewrite clones keep their own
        // discarded copies.
        let pf = *self.anonymizer.prefilter_stats();
        obs.count("phase.discover.prefilter_fast_path_lines", pf.fast_path_lines);
        obs.count("phase.discover.prefilter_slow_path_lines", pf.slow_path_lines);
        obs.count("discovery.prefilter_cache_hits", pf.cache_hits);

        // Pass 2 — rewrite the survivors from clones of the warmed
        // state, except files the resume verification already vouched
        // for.
        let pending: Vec<usize> = (0..inputs.len())
            .filter(|&i| failed[i].is_none() && !skip.contains(&inputs[i].name))
            .collect();
        let skipped: Vec<String> = inputs
            .iter()
            .filter(|f| skip.contains(&f.name))
            .map(|f| f.name.clone())
            .collect();
        let mut slots: Vec<Option<BatchOutput>> = Vec::new();
        slots.resize_with(inputs.len(), || None);

        let t_rewrite = obs.span_start();
        let jobs = if self.jobs <= 1 || pending.len() <= 1 {
            self.rewrite_inline(inputs, &pending, &mut slots, &mut failed, &mut obs);
            1
        } else {
            self.rewrite_parallel(inputs, &pending, &mut slots, &mut failed, &mut obs);
            self.jobs
        };
        obs.span_end("rewrite", "phase", 0, t_rewrite);
        obs.count("phase.rewrite.skipped", skipped.len() as u64);

        let outputs: Vec<BatchOutput> = slots.into_iter().flatten().collect();
        let failures: Vec<BatchFailure> = failed.into_iter().flatten().collect();
        let mut totals = AnonymizationStats::default();
        let mut rewrite = RewriteStats::default();
        for o in &outputs {
            totals.merge(&o.stats);
            rewrite.absorb(&o.rewrite);
        }
        // Borrow verdicts depend on the emit pass only and never feed the
        // deterministic metrics section, so they report under the
        // timing-section `phase.rewrite.` prefix.
        obs.count("phase.rewrite.lines_borrowed", rewrite.lines_borrowed);
        obs.count("phase.rewrite.lines_rewritten", rewrite.lines_rewritten);
        obs.count("phase.rewrite.allocations_avoided", rewrite.allocations_avoided);
        obs.count("phase.rewrite.hash_memo_hits", rewrite.hash_memo_hits);
        obs.count("phase.rewrite.hash_memo_misses", rewrite.hash_memo_misses);
        BatchReport {
            outputs,
            failures,
            skipped,
            discoveries,
            totals,
            rewrite,
            jobs,
            durability: DurabilityStats::default(),
            obs,
        }
    }

    /// Runs *only* the discovery pass (sequential or sharded, per the
    /// pipeline's configuration), warming the mapping state exactly as
    /// [`Self::run`] would before its rewrite pass, and returns the
    /// contained per-file failures. This is the benchmark/diagnostic
    /// entry point behind the CLI's `--bench-json` `discovery` block;
    /// production runs use [`Self::run`].
    pub fn discover_corpus(&mut self, inputs: &[BatchInput]) -> Vec<BatchFailure> {
        let mut obs = ObsShard::new(self.clock);
        let mut failed: Vec<Option<BatchFailure>> = vec![None; inputs.len()];
        let mut discoveries = BTreeMap::new();
        self.discover_pass(inputs, &BTreeMap::new(), &mut failed, &mut obs, &mut discoveries);
        failed.into_iter().flatten().collect()
    }

    /// Discovery dispatch: prewarmed files contribute their stored,
    /// order-independent accumulators (statistics, prefilter path
    /// counts) and synthesized per-file counters without being scanned —
    /// their trie insertions are already present via journal replay.
    /// The remaining files scan sequentially or sharded; the sharded
    /// path pays a worker-spawn and merge/replay cost that only
    /// amortizes over multiple files, so single-file (or single-job, or
    /// explicitly pinned) runs take the sequential path.
    fn discover_pass(
        &mut self,
        inputs: &[BatchInput],
        prewarmed: &BTreeMap<String, FileDiscovery>,
        failed: &mut [Option<BatchFailure>],
        obs: &mut ObsShard,
        discoveries: &mut BTreeMap<String, FileDiscovery>,
    ) {
        let mut to_scan: Vec<usize> = Vec::with_capacity(inputs.len());
        for (i, f) in inputs.iter().enumerate() {
            match prewarmed.get(&f.name) {
                Some(d) => {
                    // The deterministic per-file counters a cold scan
                    // would have recorded, reconstructed from the stored
                    // contribution (the file's text is watermark-verified
                    // unchanged, so byte/line counts are the cold run's).
                    obs.count("phase.discover.files", 1);
                    obs.count("phase.discover.input_bytes", f.text.len() as u64);
                    obs.record("file.input_bytes", f.text.len() as u64);
                    obs.record("file.input_lines", d.stats.lines_total);
                    obs.count("discovery.files_prewarmed", 1);
                    self.anonymizer.absorb_stats(&d.stats);
                    self.anonymizer
                        .absorb_prefilter_counts(d.prefilter_fast, d.prefilter_slow);
                    discoveries.insert(f.name.clone(), d.clone());
                }
                None => to_scan.push(i),
            }
        }
        if self.sequential_discovery || self.jobs <= 1 || to_scan.len() <= 1 {
            self.discover_sequential(inputs, &to_scan, failed, obs, discoveries);
        } else {
            self.discover_sharded(inputs, &to_scan, failed, obs, discoveries);
        }
    }

    /// Sequential discovery: every file through
    /// [`Anonymizer::discover_config`] in corpus order, mutating the
    /// retained anonymizer directly.
    fn discover_sequential(
        &mut self,
        inputs: &[BatchInput],
        indices: &[usize],
        failed: &mut [Option<BatchFailure>],
        obs: &mut ObsShard,
        discoveries: &mut BTreeMap<String, FileDiscovery>,
    ) {
        for &i in indices {
            let f = &inputs[i];
            let pf_before = *self.anonymizer.prefilter_stats();
            let t_file = obs.span_start();
            let result = catch_unwind(AssertUnwindSafe(|| self.anonymizer.discover_config(&f.text)));
            obs.span_end(&f.name, "discover", 0, t_file);
            obs.count("phase.discover.files", 1);
            obs.count("phase.discover.input_bytes", f.text.len() as u64);
            obs.record("file.input_bytes", f.text.len() as u64);
            match result {
                Ok(stats) => {
                    obs.record("file.input_lines", stats.lines_total);
                    let pf = *self.anonymizer.prefilter_stats();
                    discoveries.insert(
                        f.name.clone(),
                        FileDiscovery {
                            stats,
                            prefilter_fast: pf.fast_path_lines - pf_before.fast_path_lines,
                            prefilter_slow: pf.slow_path_lines - pf_before.slow_path_lines,
                        },
                    );
                }
                Err(payload) => {
                    obs.count("phase.discover.panics_contained", 1);
                    failed[i] = Some(BatchFailure {
                        name: f.name.clone(),
                        phase: BatchPhase::Discover,
                        cause: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }

    /// Sharded discovery: disjoint contiguous file ranges scanned by
    /// observer clones in parallel, commutative merges, then one
    /// canonical replay in first-occurrence order. See the module docs
    /// and [`crate::discover`] for why the warmed state is byte-identical
    /// to [`Self::discover_sequential`].
    fn discover_sharded(
        &mut self,
        inputs: &[BatchInput],
        indices: &[usize],
        failed: &mut [Option<BatchFailure>],
        obs: &mut ObsShard,
        discoveries: &mut BTreeMap<String, FileDiscovery>,
    ) {
        let workers = self.jobs.min(indices.len());
        let clock = obs.clock();
        obs.count("discovery.shards", workers as u64);
        let template = self.anonymizer.observer();
        // Contiguous ranges over the to-scan list keep every
        // observation's corpus position globally ordered no matter which
        // worker logged it; each observation carries its file's
        // *original* corpus index, so the canonical replay matches a
        // cold sequential scan's first-occurrence order.
        let bounds: Vec<(usize, usize)> = (0..workers)
            .map(|w| (w * indices.len() / workers, (w + 1) * indices.len() / workers))
            .collect();

        let mut shards: Vec<(Anonymizer, ObsShard)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .enumerate()
                .map(|(w, &(lo, hi))| {
                    let template = &template;
                    scope.spawn(move || {
                        let mut anon = template.clone();
                        let mut shard = ObsShard::new(clock);
                        let tid = w as u32 + 1;
                        let mut fails: Vec<(usize, BatchFailure)> = Vec::new();
                        let mut found: Vec<(String, FileDiscovery)> = Vec::new();
                        for &i in &indices[lo..hi] {
                            let f = &inputs[i];
                            let pf_before = *anon.prefilter_stats();
                            let t_file = shard.span_start();
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                anon.observe_file(i as u64, &f.text)
                            }));
                            shard.span_end(&f.name, "discover", tid, t_file);
                            shard.count("phase.discover.files", 1);
                            shard.count("phase.discover.input_bytes", f.text.len() as u64);
                            shard.record("file.input_bytes", f.text.len() as u64);
                            match result {
                                Ok(stats) => {
                                    shard.record("file.input_lines", stats.lines_total);
                                    let pf = *anon.prefilter_stats();
                                    found.push((
                                        f.name.clone(),
                                        FileDiscovery {
                                            stats,
                                            prefilter_fast: pf.fast_path_lines
                                                - pf_before.fast_path_lines,
                                            prefilter_slow: pf.slow_path_lines
                                                - pf_before.slow_path_lines,
                                        },
                                    ));
                                }
                                Err(payload) => {
                                    // The observations logged before the
                                    // panic stay in the shard — exactly
                                    // the partial mutations a sequential
                                    // scan would have kept.
                                    shard.count("phase.discover.panics_contained", 1);
                                    fails.push((
                                        i,
                                        BatchFailure {
                                            name: f.name.clone(),
                                            phase: BatchPhase::Discover,
                                            cause: panic_message(payload.as_ref()),
                                        },
                                    ));
                                }
                            }
                        }
                        (anon, fails, found, shard)
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok((anon, fails, found, shard)) => {
                        for (i, f) in fails {
                            failed[i] = Some(f);
                        }
                        for (name, d) in found {
                            discoveries.insert(name, d);
                        }
                        shards.push((anon, shard));
                    }
                    Err(_) => {
                        // Worker infrastructure died outside the per-file
                        // containment (should be impossible). Fail
                        // closed: report every file of the shard and
                        // forfeit its observations.
                        for &i in &indices[bounds[w].0..bounds[w].1] {
                            if failed[i].is_none() {
                                failed[i] = Some(BatchFailure {
                                    name: inputs[i].name.clone(),
                                    phase: BatchPhase::Discover,
                                    cause: "discovery worker crashed".to_string(),
                                });
                            }
                        }
                    }
                }
            }
        });

        // Commutative merges in shard order, then the canonical replay
        // that drives the tries through the sequential insertion order.
        let mut log = ObservationLog::default();
        for (anon, shard) in shards {
            obs.merge(&shard);
            log.merge(self.anonymizer.absorb_observer(anon));
        }
        for observed in log.into_canonical_order() {
            self.anonymizer.replay_observed(observed);
        }
    }

    /// Single-worker rewrite. Uses a clone (not the retained anonymizer)
    /// so the retained state keeps exactly one pass of total statistics,
    /// matching the parallel mode.
    fn rewrite_inline(
        &self,
        inputs: &[BatchInput],
        pending: &[usize],
        slots: &mut [Option<BatchOutput>],
        failed: &mut [Option<BatchFailure>],
        obs: &mut ObsShard,
    ) {
        let mut anon = self.anonymizer.clone();
        for &i in pending {
            let t_file = obs.span_start();
            let result = catch_unwind(AssertUnwindSafe(|| anon.anonymize_config(&inputs[i].text)));
            obs.span_end(&inputs[i].name, "rewrite", 1, t_file);
            obs.count("phase.rewrite.files", 1);
            match result {
                Ok(out) => {
                    obs.count("phase.rewrite.output_bytes", out.text.len() as u64);
                    slots[i] = Some(BatchOutput {
                        name: inputs[i].name.clone(),
                        text: out.text,
                        stats: out.stats,
                        rewrite: anon.take_rewrite_stats(),
                    });
                }
                Err(payload) => {
                    obs.count("phase.rewrite.panics_contained", 1);
                    failed[i] = Some(BatchFailure {
                        name: inputs[i].name.clone(),
                        phase: BatchPhase::Rewrite,
                        cause: panic_message(payload.as_ref()),
                    });
                    // The clone may hold partial state from the aborted
                    // emit; start fresh from the warmed original.
                    anon = self.anonymizer.clone();
                }
            }
        }
    }

    /// Worker-pool rewrite over a shared work index.
    fn rewrite_parallel(
        &self,
        inputs: &[BatchInput],
        pending: &[usize],
        slots: &mut [Option<BatchOutput>],
        failed: &mut [Option<BatchFailure>],
        obs: &mut ObsShard,
    ) {
        let next = AtomicUsize::new(0);
        let cells = Mutex::new((slots, failed));
        let warmed = &self.anonymizer;
        let clock = obs.clock();
        let workers = self.jobs.min(pending.len());
        // Each worker records into a private shard; the shards merge
        // below in worker order. Counter/histogram merges are sums, so
        // the merged values are independent of work-stealing order —
        // only span timestamps (timing data) vary run to run.
        let shards = Mutex::new(vec![ObsShard::new(clock); workers]);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let shards = &shards;
                let next = &next;
                let cells = &cells;
                scope.spawn(move || {
                    // Each worker re-emits from its own copy of the warmed
                    // state; only lookups happen, so copies never diverge
                    // in any way that affects output.
                    let mut anon = warmed.clone();
                    let mut shard = ObsShard::new(clock);
                    let tid = w as u32 + 1;
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= pending.len() {
                            break;
                        }
                        let i = pending[k];
                        let t_file = shard.span_start();
                        let result =
                            catch_unwind(AssertUnwindSafe(|| anon.anonymize_config(&inputs[i].text)));
                        shard.span_end(&inputs[i].name, "rewrite", tid, t_file);
                        shard.count("phase.rewrite.files", 1);
                        // A panicking sibling poisons the mutex; writes
                        // are index-disjoint, so the guarded data holds
                        // no broken invariant and the lock is recovered.
                        let mut guard = cells.lock().unwrap_or_else(|e| e.into_inner());
                        match result {
                            Ok(out) => {
                                shard.count("phase.rewrite.output_bytes", out.text.len() as u64);
                                guard.0[i] = Some(BatchOutput {
                                    name: inputs[i].name.clone(),
                                    text: out.text,
                                    stats: out.stats,
                                    rewrite: anon.take_rewrite_stats(),
                                });
                            }
                            Err(payload) => {
                                shard.count("phase.rewrite.panics_contained", 1);
                                guard.1[i] = Some(BatchFailure {
                                    name: inputs[i].name.clone(),
                                    phase: BatchPhase::Rewrite,
                                    cause: panic_message(payload.as_ref()),
                                });
                                drop(guard);
                                anon = warmed.clone();
                            }
                        }
                    }
                    let mut guard = shards.lock().unwrap_or_else(|e| e.into_inner());
                    guard[w] = shard;
                });
            }
        });

        let collected = shards.into_inner().unwrap_or_else(|e| e.into_inner());
        for shard in &collected {
            obs.merge(shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<BatchInput> {
        let mk = |i: u32| {
            format!(
                "hostname r{i}.backbone.example.net\n\
                 ! link to chicago pop {i}\n\
                 interface Serial0/{i}\n ip address 10.{i}.0.1 255.255.255.0\n\
                 router bgp 70{i}\n neighbor 12.126.236.{i} remote-as 1239\n\
                 ip route 192.168.{i}.0 255.255.255.0 Null0\n"
            )
        };
        (1..=6)
            .map(|i| BatchInput {
                name: format!("r{i}.cfg"),
                text: mk(i),
            })
            .collect()
    }

    fn secret() -> AnonymizerConfig {
        AnonymizerConfig::new(b"batch-test-secret".to_vec())
    }

    /// A config that injects a panic on any line containing `marker`
    /// during the given phase.
    fn faulty(marker: &str, phase: BatchPhase) -> AnonymizerConfig {
        let mut cfg = secret();
        cfg.fault_marker = Some((marker.to_string(), phase));
        cfg
    }

    #[test]
    fn parallel_output_matches_sequential_bytes() {
        let inputs = corpus();
        let seq = BatchPipeline::new(secret(), 1).run(&inputs);
        for jobs in [2, 4, 8] {
            let par = BatchPipeline::new(secret(), jobs).run(&inputs);
            assert_eq!(par.outputs.len(), seq.outputs.len());
            for (a, b) in seq.outputs.iter().zip(&par.outputs) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.text, b.text, "jobs={jobs} diverged on {}", a.name);
                assert_eq!(a.stats, b.stats, "jobs={jobs} stats diverged");
            }
            assert_eq!(seq.totals, par.totals);
        }
    }

    #[test]
    fn discovery_then_emit_matches_plain_anonymizer() {
        // The batch pipeline must agree with the plain sequential API a
        // caller would have used before it existed.
        let inputs = corpus();
        let mut plain = Anonymizer::new(secret());
        let expect: Vec<String> = inputs
            .iter()
            .map(|f| plain.anonymize_config(&f.text).text)
            .collect();
        let got = BatchPipeline::new(secret(), 4).run(&inputs);
        for (e, g) in expect.iter().zip(&got.outputs) {
            assert_eq!(e, &g.text);
        }
    }

    #[test]
    fn discover_config_warms_identical_state() {
        // Discovery followed by emit gives the same bytes as cold emit,
        // and the same leak record / emitted exclusions.
        let inputs = corpus();
        let mut cold = Anonymizer::new(secret());
        let cold_texts: Vec<String> = inputs
            .iter()
            .map(|f| cold.anonymize_config(&f.text).text)
            .collect();

        let mut warm = Anonymizer::new(secret());
        for f in &inputs {
            warm.discover_config(&f.text);
        }
        let warm_texts: Vec<String> = inputs
            .iter()
            .map(|f| warm.anonymize_config(&f.text).text)
            .collect();

        assert_eq!(cold_texts, warm_texts);
        assert_eq!(cold.leak_record().asns, warm.leak_record().asns);
        assert_eq!(cold.leak_record().ips, warm.leak_record().ips);
        assert_eq!(cold.leak_record().words, warm.leak_record().words);
    }

    #[test]
    fn discovery_stats_match_emit_stats() {
        let inputs = corpus();
        let mut emit = Anonymizer::new(secret());
        let mut discover = Anonymizer::new(secret());
        for f in &inputs {
            let e = emit.anonymize_config(&f.text).stats;
            let d = discover.discover_config(&f.text);
            assert_eq!(e, d);
        }
    }

    #[test]
    fn totals_match_anonymizer_totals_in_parallel_mode() {
        let inputs = corpus();
        let mut p = BatchPipeline::new(secret(), 3);
        let report = p.run(&inputs);
        // The pipeline's retained (discovery-warmed) anonymizer saw the
        // whole corpus once, so its totals agree with the report.
        assert_eq!(report.totals, *p.anonymizer().total_stats());
    }

    #[test]
    fn jobs_zero_uses_available_parallelism() {
        let p = BatchPipeline::new(secret(), 0);
        assert!(p.jobs >= 1);
    }

    #[test]
    fn cross_file_referential_integrity_survives_parallelism() {
        // The same route-map name in two different files must map to the
        // same token — the §3.2 consistency requirement the shared warmed
        // state exists to honor.
        let inputs = vec![
            BatchInput {
                name: "a.cfg".into(),
                text: " neighbor 9.9.9.9 route-map CHI-IMPORT in\n".into(),
            },
            BatchInput {
                name: "b.cfg".into(),
                text: "route-map CHI-IMPORT permit 10\n".into(),
            },
        ];
        let report = BatchPipeline::new(secret(), 2).run(&inputs);
        let use_tok = report.outputs[0]
            .text
            .split_whitespace()
            .nth(3)
            .expect("use site")
            .to_string();
        let def_tok = report.outputs[1]
            .text
            .split_whitespace()
            .nth(1)
            .expect("def site")
            .to_string();
        assert_eq!(use_tok, def_tok);
    }

    #[test]
    fn discovery_panic_is_contained_and_reported() {
        let mut inputs = corpus();
        inputs[2].text.push_str("POISON PILL here\n");
        let mut p = BatchPipeline::new(faulty("POISON", BatchPhase::Discover), 1);
        let report = p.run(&inputs);
        assert_eq!(report.outputs.len(), inputs.len() - 1);
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert_eq!(f.name, "r3.cfg");
        assert_eq!(f.phase, BatchPhase::Discover);
        assert!(f.cause.contains("injected fault"), "cause: {}", f.cause);
        // The failed file's output was withheld, not emitted empty.
        assert!(report.outputs.iter().all(|o| o.name != "r3.cfg"));
    }

    #[test]
    fn rewrite_panic_is_contained_at_any_job_count() {
        let mut inputs = corpus();
        inputs[4].text.push_str("POISON PILL here\n");
        for jobs in [1, 2, 8] {
            let mut p = BatchPipeline::new(faulty("POISON", BatchPhase::Rewrite), jobs);
            let report = p.run(&inputs);
            assert_eq!(report.failures.len(), 1, "jobs={jobs}");
            assert_eq!(report.failures[0].name, "r5.cfg");
            assert_eq!(report.failures[0].phase, BatchPhase::Rewrite);
            assert_eq!(report.outputs.len(), inputs.len() - 1);
        }
    }

    #[test]
    fn contained_panic_leaves_other_outputs_byte_identical() {
        // The defining fail-closed property: a hostile file changes
        // nothing about any other file's bytes.
        let clean = corpus();
        let baseline = BatchPipeline::new(secret(), 2).run(&clean);

        let mut hostile = clean.clone();
        hostile.push(BatchInput {
            name: "evil.cfg".into(),
            text: "hostname evil\nPOISON PILL\n".into(),
        });
        for jobs in [1, 2, 8] {
            let mut p = BatchPipeline::new(faulty("POISON", BatchPhase::Discover), jobs);
            let report = p.run(&hostile);
            assert_eq!(report.failures.len(), 1, "jobs={jobs}");
            assert_eq!(report.outputs.len(), clean.len());
            for (a, b) in baseline.outputs.iter().zip(&report.outputs) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.text, b.text, "jobs={jobs} diverged on {}", a.name);
            }
        }
    }

    #[test]
    fn failure_report_is_deterministic_across_job_counts() {
        let mut inputs = corpus();
        inputs[0].text.push_str("POISON first\n");
        inputs[3].text.push_str("POISON second\n");
        inputs[5].text.push_str("POISON third\n");
        let reference: Vec<(String, BatchPhase, String)> =
            BatchPipeline::new(faulty("POISON", BatchPhase::Rewrite), 1)
                .run(&inputs)
                .failures
                .iter()
                .map(|f| (f.name.clone(), f.phase, f.cause.clone()))
                .collect();
        assert_eq!(reference.len(), 3);
        for jobs in [2, 4, 8] {
            let got: Vec<(String, BatchPhase, String)> =
                BatchPipeline::new(faulty("POISON", BatchPhase::Rewrite), jobs)
                    .run(&inputs)
                    .failures
                    .iter()
                    .map(|f| (f.name.clone(), f.phase, f.cause.clone()))
                    .collect();
            assert_eq!(got, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn run_skipping_preserves_other_files_bytes() {
        // The resume property at the pipeline level: skipping verified
        // files changes nothing about the bytes of the files that are
        // re-emitted, because discovery still walks the whole corpus.
        let inputs = corpus();
        let full = BatchPipeline::new(secret(), 2).run(&inputs);
        let skip = BTreeSet::from(["r2.cfg".to_string(), "r5.cfg".to_string()]);
        for jobs in [1, 4] {
            let partial = BatchPipeline::new(secret(), jobs).run_skipping(&inputs, &skip);
            assert_eq!(partial.skipped, vec!["r2.cfg".to_string(), "r5.cfg".to_string()]);
            assert_eq!(partial.outputs.len(), inputs.len() - 2);
            for o in &partial.outputs {
                let reference = full
                    .outputs
                    .iter()
                    .find(|f| f.name == o.name)
                    .expect("present in full run");
                assert_eq!(o.text, reference.text, "jobs={jobs}: {} diverged", o.name);
            }
        }
    }

    #[test]
    fn empty_corpus_is_a_clean_report() {
        let report = BatchPipeline::new(secret(), 4).run(&[]);
        assert!(report.outputs.is_empty());
        assert!(report.failures.is_empty());
    }

    /// The warmed-state fingerprint a discovery pass leaves behind.
    fn state_fingerprint(a: &Anonymizer) -> (Vec<String>, crate::leak::LeakRecord, (usize, usize)) {
        (
            a.emitted_exclusions(),
            a.leak_record().clone(),
            a.trie_node_counts(),
        )
    }

    #[test]
    fn sharded_discovery_warms_identical_state() {
        // The tentpole equivalence at the state level: emitted set, leak
        // record, trie node counts, and total stats all match the
        // sequential scan, at several worker counts.
        let inputs = corpus();
        let mut seq = BatchPipeline::new(secret(), 4).with_sequential_discovery(true);
        seq.discover_corpus(&inputs);
        for jobs in [2, 3, 4, 8] {
            let mut par = BatchPipeline::new(secret(), jobs);
            par.discover_corpus(&inputs);
            assert_eq!(
                state_fingerprint(seq.anonymizer()),
                state_fingerprint(par.anonymizer()),
                "jobs={jobs}"
            );
            assert_eq!(
                seq.anonymizer().total_stats(),
                par.anonymizer().total_stats(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn sharded_discovery_outputs_match_sequential_discovery_bytes() {
        // End to end through the full pipeline: pinning discovery
        // sequential vs letting it shard changes no output byte.
        let inputs = corpus();
        for jobs in [2, 4, 8] {
            let pinned = BatchPipeline::new(secret(), jobs)
                .with_sequential_discovery(true)
                .run(&inputs);
            let sharded = BatchPipeline::new(secret(), jobs).run(&inputs);
            assert_eq!(pinned.outputs.len(), sharded.outputs.len());
            for (a, b) in pinned.outputs.iter().zip(&sharded.outputs) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.text, b.text, "jobs={jobs} diverged on {}", a.name);
                assert_eq!(a.stats, b.stats, "jobs={jobs} stats diverged");
            }
            assert_eq!(pinned.totals, sharded.totals);
        }
    }

    #[test]
    fn sharded_discovery_contains_panics_like_sequential() {
        // A poisoned file mid-corpus: the failure report and every other
        // file's bytes match the sequential-discovery run exactly.
        let mut inputs = corpus();
        inputs[2].text.push_str("POISON PILL here\n");
        let reference = BatchPipeline::new(faulty("POISON", BatchPhase::Discover), 1).run(&inputs);
        assert_eq!(reference.failures.len(), 1);
        for jobs in [2, 4, 8] {
            let run = BatchPipeline::new(faulty("POISON", BatchPhase::Discover), jobs).run(&inputs);
            assert_eq!(run.failures.len(), 1, "jobs={jobs}");
            assert_eq!(run.failures[0].name, "r3.cfg");
            assert_eq!(run.failures[0].phase, BatchPhase::Discover);
            assert_eq!(run.outputs.len(), reference.outputs.len());
            for (a, b) in reference.outputs.iter().zip(&run.outputs) {
                assert_eq!(a.text, b.text, "jobs={jobs} diverged on {}", a.name);
            }
        }
    }

    #[test]
    fn discover_corpus_matches_run_state() {
        // The benchmark entry point warms exactly the state `run` does.
        let inputs = corpus();
        let mut via_run = BatchPipeline::new(secret(), 4);
        via_run.run(&inputs);
        let mut via_discover = BatchPipeline::new(secret(), 4);
        let failures = via_discover.discover_corpus(&inputs);
        assert!(failures.is_empty());
        assert_eq!(
            state_fingerprint(via_run.anonymizer()),
            state_fingerprint(via_discover.anonymizer())
        );
    }

    #[test]
    fn prefilter_counters_are_mode_invariant() {
        // Fast/slow line counts are pure functions of the corpus: the
        // sequential scan and any shard layout agree (cache hits, by
        // design, may not — they live in the timing section).
        let inputs = corpus();
        let mut seq = BatchPipeline::new(secret(), 1);
        seq.discover_corpus(&inputs);
        let s = *seq.anonymizer().prefilter_stats();
        assert!(s.fast_path_lines > 0, "corpus has fast-path lines");
        assert!(s.slow_path_lines > 0, "corpus has slow-path lines");
        for jobs in [2, 4, 8] {
            let mut par = BatchPipeline::new(secret(), jobs);
            par.discover_corpus(&inputs);
            let p = *par.anonymizer().prefilter_stats();
            assert_eq!(s.fast_path_lines, p.fast_path_lines, "jobs={jobs}");
            assert_eq!(s.slow_path_lines, p.slow_path_lines, "jobs={jobs}");
        }
    }

    #[test]
    fn discoveries_are_mode_and_job_invariant() {
        // The per-file discovery records (stats + prefilter deltas) are
        // pure functions of each file's text: sequential and sharded
        // scans agree at every job count, and the deltas sum to the
        // whole-corpus prefilter counters.
        let inputs = corpus();
        let mut seq = BatchPipeline::new(secret(), 1);
        let reference = seq.run(&inputs).discoveries;
        assert_eq!(reference.len(), inputs.len());
        let s = *seq.anonymizer().prefilter_stats();
        assert_eq!(
            reference.values().map(|d| d.prefilter_fast).sum::<u64>(),
            s.fast_path_lines
        );
        assert_eq!(
            reference.values().map(|d| d.prefilter_slow).sum::<u64>(),
            s.slow_path_lines
        );
        for jobs in [2, 4, 8] {
            let mut par = BatchPipeline::new(secret(), jobs);
            assert_eq!(par.run(&inputs).discoveries, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn incremental_prewarmed_run_matches_cold_run() {
        // The tentpole equivalence at the pipeline level: session 1 over
        // a prefix of the corpus, state captured and restored via
        // journal replay, session 2 prewarmed over the grown corpus —
        // every byte, per-file stat, and state fingerprint matches one
        // continuous cold run, at several job counts.
        let inputs = corpus();
        let mut cold = BatchPipeline::new(secret(), 2);
        let cold_report = cold.run(&inputs);

        let mut s1 = BatchPipeline::new(secret(), 2);
        let r1 = s1.run(&inputs[..4]);
        let state = crate::state::AnonState::capture(
            s1.anonymizer(),
            "test-fingerprint".to_string(),
            BTreeMap::new(),
        );

        for jobs in [1, 2, 4] {
            let mut s2 = BatchPipeline::new(secret(), jobs);
            state
                .restore_into("state.json", s2.anonymizer_mut())
                .expect("restore");
            let r2 = s2.run_incremental(&inputs, &BTreeSet::new(), &r1.discoveries);
            assert_eq!(r2.outputs.len(), cold_report.outputs.len());
            for (a, b) in cold_report.outputs.iter().zip(&r2.outputs) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.text, b.text, "jobs={jobs} diverged on {}", a.name);
                assert_eq!(a.stats, b.stats, "jobs={jobs} stats diverged on {}", a.name);
            }
            assert_eq!(r2.discoveries, cold_report.discoveries, "jobs={jobs}");
            assert_eq!(
                s2.anonymizer().total_stats(),
                cold.anonymizer().total_stats(),
                "jobs={jobs}"
            );
            assert_eq!(
                state_fingerprint(s2.anonymizer()),
                state_fingerprint(cold.anonymizer()),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn fully_prewarmed_run_scans_nothing_and_reports_cold_state() {
        // An unchanged corpus under warm state: every file prewarmed and
        // rewrite-skipped — no outputs, but the retained state and the
        // per-file discovery map still match the cold run exactly.
        let inputs = corpus();
        let mut cold = BatchPipeline::new(secret(), 2);
        let cold_report = cold.run(&inputs);
        let state = crate::state::AnonState::capture(
            cold.anonymizer(),
            "test-fingerprint".to_string(),
            BTreeMap::new(),
        );

        let skip: BTreeSet<String> = inputs.iter().map(|f| f.name.clone()).collect();
        let mut warm = BatchPipeline::new(secret(), 4);
        state
            .restore_into("state.json", warm.anonymizer_mut())
            .expect("restore");
        let r = warm.run_incremental(&inputs, &skip, &cold_report.discoveries);
        assert!(r.outputs.is_empty());
        assert!(r.failures.is_empty());
        assert_eq!(r.skipped.len(), inputs.len());
        assert_eq!(r.discoveries, cold_report.discoveries);
        assert_eq!(warm.anonymizer().total_stats(), cold.anonymizer().total_stats());
        assert_eq!(
            state_fingerprint(warm.anonymizer()),
            state_fingerprint(cold.anonymizer())
        );
    }

    #[test]
    fn disabling_the_prefilter_changes_no_byte_or_fire_count() {
        let inputs = corpus();
        let run = BatchPipeline::new(secret(), 4).run(&inputs);
        let mut off = secret();
        off.disable_prefilter = true;
        let run_off = BatchPipeline::new(off, 4).run(&inputs);
        for (a, b) in run.outputs.iter().zip(&run_off.outputs) {
            assert_eq!(a.text, b.text, "prefilter changed bytes of {}", a.name);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(
            run.totals.rule_fires_complete(),
            run_off.totals.rule_fires_complete()
        );
    }

    /// The zero-copy rewrite (DESIGN.md §17) is an optimization, not a
    /// behavior: against the retained legacy path it must produce the
    /// same output bytes, the same per-file stats, and the same complete
    /// fire map — at every job count.
    #[test]
    fn disabling_zero_copy_changes_no_byte_or_fire_count() {
        let inputs = corpus();
        for jobs in [1, 4] {
            let run = BatchPipeline::new(secret(), jobs).run(&inputs);
            let mut off = secret();
            off.disable_zero_copy = true;
            let run_off = BatchPipeline::new(off, jobs).run(&inputs);
            assert_eq!(run.outputs.len(), run_off.outputs.len());
            for (a, b) in run.outputs.iter().zip(&run_off.outputs) {
                assert_eq!(a.text, b.text, "zero-copy changed bytes of {}", a.name);
                assert_eq!(a.stats, b.stats);
            }
            assert_eq!(
                run.totals.rule_fires_complete(),
                run_off.totals.rule_fires_complete()
            );
            // The legacy path reports no borrow accounting; the zero-copy
            // path accounts for every emitted line exactly once.
            assert_eq!(run_off.rewrite, RewriteStats::default());
            assert_eq!(
                run.rewrite.lines_total,
                run.rewrite.lines_borrowed + run.rewrite.lines_rewritten
            );
            assert!(run.rewrite.lines_total > 0);
        }
    }
}
