//! Parallel anonymization of a multi-router corpus under one keyed state.
//!
//! §3.2 requires every identifier of a network to map consistently
//! *across* its files, which is why one [`Anonymizer`] processes the
//! whole network and why the paper notes the table-based IP scheme does
//! not parallelize trivially (unlike Xu's stateless scheme). The pipeline
//! here recovers the parallelism anyway, with the output guaranteed
//! byte-identical to a sequential run at any worker count:
//!
//! 1. **Discovery (sequential).** Every file is run through
//!    [`Anonymizer::discover_config`] in corpus order. This performs the
//!    exact sequence of order-dependent mapping mutations a sequential
//!    emit run would — trie node creation, scramble walks — plus the
//!    order-independent ones (leak record, emitted images, statistics),
//!    while skipping the per-token salted hashing and string assembly
//!    that dominate emission cost.
//! 2. **Rewrite (parallel).** Each worker thread takes a clone of the
//!    warmed anonymizer and re-emits files. Every mapping the emit pass
//!    needs already exists, so workers only perform pure lookups and
//!    stateless keyed hashes; no cross-thread state is shared and no
//!    insertion order can differ.
//!
//! Byte-identity follows from the mappings being *sticky*: once an
//! address (or any identifier) has an image, re-anonymizing it returns
//! the same image without mutating state, and the discovery pass creates
//! all images in exactly the order the sequential run would have.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::anonymizer::{Anonymizer, AnonymizerConfig};
use crate::stats::AnonymizationStats;

/// One input file of a batch: a display name and its configuration text.
#[derive(Debug, Clone)]
pub struct BatchInput {
    /// Name used for reporting (typically the relative file path).
    pub name: String,
    /// The raw configuration text.
    pub text: String,
}

/// One anonymized file of a batch, in input order.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// The input's display name.
    pub name: String,
    /// Anonymized configuration text.
    pub text: String,
    /// Per-file rule counters.
    pub stats: AnonymizationStats,
}

/// The whole-corpus result.
pub struct BatchReport {
    /// Per-file outputs, in input order.
    pub outputs: Vec<BatchOutput>,
    /// Aggregate counters across the corpus.
    pub totals: AnonymizationStats,
    /// Worker threads used for the rewrite pass.
    pub jobs: usize,
}

/// A corpus anonymizer: one keyed state, many files, optional
/// parallelism with sequential-identical output.
pub struct BatchPipeline {
    anonymizer: Anonymizer,
    jobs: usize,
}

impl BatchPipeline {
    /// Creates a pipeline over one owner secret. `jobs` is the worker
    /// count for the rewrite pass; `0` means the logical core count.
    pub fn new(cfg: AnonymizerConfig, jobs: usize) -> BatchPipeline {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        BatchPipeline {
            anonymizer: Anonymizer::new(cfg),
            jobs,
        }
    }

    /// The warmed anonymizer (for audits: leak record, emitted
    /// exclusions, mapping audit). Meaningful after [`Self::run`].
    pub fn anonymizer(&self) -> &Anonymizer {
        &self.anonymizer
    }

    /// Consumes the pipeline, returning the warmed anonymizer.
    pub fn into_anonymizer(self) -> Anonymizer {
        self.anonymizer
    }

    /// Anonymizes the corpus. Output order matches input order and the
    /// bytes are identical for every `jobs` value.
    pub fn run(&mut self, inputs: &[BatchInput]) -> BatchReport {
        if self.jobs <= 1 || inputs.len() <= 1 {
            return self.run_sequential(inputs);
        }
        self.run_parallel(inputs)
    }

    /// The reference path: one cold emit pass, file by file.
    fn run_sequential(&mut self, inputs: &[BatchInput]) -> BatchReport {
        let outputs = inputs
            .iter()
            .map(|f| {
                let out = self.anonymizer.anonymize_config(&f.text);
                BatchOutput {
                    name: f.name.clone(),
                    text: out.text,
                    stats: out.stats,
                }
            })
            .collect();
        self.report(outputs, 1)
    }

    /// Discovery (sequential) then rewrite (parallel worker pool over a
    /// shared work index).
    fn run_parallel(&mut self, inputs: &[BatchInput]) -> BatchReport {
        for f in inputs {
            self.anonymizer.discover_config(&f.text);
        }

        let mut slots: Vec<Option<BatchOutput>> = Vec::new();
        slots.resize_with(inputs.len(), || None);
        let next = AtomicUsize::new(0);
        let slots_mutex = Mutex::new(&mut slots);
        let warmed = &self.anonymizer;

        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(inputs.len()) {
                scope.spawn(|| {
                    // Each worker re-emits from its own copy of the warmed
                    // state; only lookups happen, so copies never diverge
                    // in any way that affects output.
                    let mut anon = warmed.clone();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= inputs.len() {
                            break;
                        }
                        let out = anon.anonymize_config(&inputs[i].text);
                        let output = BatchOutput {
                            name: inputs[i].name.clone(),
                            text: out.text,
                            stats: out.stats,
                        };
                        let mut guard = slots_mutex.lock().expect("no poisoned worker");
                        guard[i] = Some(output);
                    }
                });
            }
        });

        let outputs = slots
            .into_iter()
            .map(|s| s.expect("every index filled"))
            .collect();
        self.report(outputs, self.jobs)
    }

    fn report(&self, outputs: Vec<BatchOutput>, jobs: usize) -> BatchReport {
        let mut totals = AnonymizationStats::default();
        for o in &outputs {
            totals.merge(&o.stats);
        }
        BatchReport {
            outputs,
            totals,
            jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<BatchInput> {
        let mk = |i: u32| {
            format!(
                "hostname r{i}.backbone.example.net\n\
                 ! link to chicago pop {i}\n\
                 interface Serial0/{i}\n ip address 10.{i}.0.1 255.255.255.0\n\
                 router bgp 70{i}\n neighbor 12.126.236.{i} remote-as 1239\n\
                 ip route 192.168.{i}.0 255.255.255.0 Null0\n"
            )
        };
        (1..=6)
            .map(|i| BatchInput {
                name: format!("r{i}.cfg"),
                text: mk(i),
            })
            .collect()
    }

    fn secret() -> AnonymizerConfig {
        AnonymizerConfig::new(b"batch-test-secret".to_vec())
    }

    #[test]
    fn parallel_output_matches_sequential_bytes() {
        let inputs = corpus();
        let seq = BatchPipeline::new(secret(), 1).run(&inputs);
        for jobs in [2, 4, 8] {
            let par = BatchPipeline::new(secret(), jobs).run(&inputs);
            assert_eq!(par.outputs.len(), seq.outputs.len());
            for (a, b) in seq.outputs.iter().zip(&par.outputs) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.text, b.text, "jobs={jobs} diverged on {}", a.name);
                assert_eq!(a.stats, b.stats, "jobs={jobs} stats diverged");
            }
            assert_eq!(seq.totals, par.totals);
        }
    }

    #[test]
    fn discovery_then_emit_matches_plain_anonymizer() {
        // The batch pipeline must agree with the plain sequential API a
        // caller would have used before it existed.
        let inputs = corpus();
        let mut plain = Anonymizer::new(secret());
        let expect: Vec<String> = inputs
            .iter()
            .map(|f| plain.anonymize_config(&f.text).text)
            .collect();
        let got = BatchPipeline::new(secret(), 4).run(&inputs);
        for (e, g) in expect.iter().zip(&got.outputs) {
            assert_eq!(e, &g.text);
        }
    }

    #[test]
    fn discover_config_warms_identical_state() {
        // Discovery followed by emit gives the same bytes as cold emit,
        // and the same leak record / emitted exclusions.
        let inputs = corpus();
        let mut cold = Anonymizer::new(secret());
        let cold_texts: Vec<String> = inputs
            .iter()
            .map(|f| cold.anonymize_config(&f.text).text)
            .collect();

        let mut warm = Anonymizer::new(secret());
        for f in &inputs {
            warm.discover_config(&f.text);
        }
        let warm_texts: Vec<String> = inputs
            .iter()
            .map(|f| warm.anonymize_config(&f.text).text)
            .collect();

        assert_eq!(cold_texts, warm_texts);
        assert_eq!(cold.leak_record().asns, warm.leak_record().asns);
        assert_eq!(cold.leak_record().ips, warm.leak_record().ips);
        assert_eq!(cold.leak_record().words, warm.leak_record().words);
    }

    #[test]
    fn discovery_stats_match_emit_stats() {
        let inputs = corpus();
        let mut emit = Anonymizer::new(secret());
        let mut discover = Anonymizer::new(secret());
        for f in &inputs {
            let e = emit.anonymize_config(&f.text).stats;
            let d = discover.discover_config(&f.text);
            assert_eq!(e, d);
        }
    }

    #[test]
    fn totals_match_anonymizer_totals_in_parallel_mode() {
        let inputs = corpus();
        let mut p = BatchPipeline::new(secret(), 3);
        let report = p.run(&inputs);
        // The pipeline's retained (discovery-warmed) anonymizer saw the
        // whole corpus once, so its totals agree with the report.
        assert_eq!(report.totals, *p.anonymizer().total_stats());
    }

    #[test]
    fn jobs_zero_uses_available_parallelism() {
        let p = BatchPipeline::new(secret(), 0);
        assert!(p.jobs >= 1);
    }

    #[test]
    fn cross_file_referential_integrity_survives_parallelism() {
        // The same route-map name in two different files must map to the
        // same token — the §3.2 consistency requirement the shared warmed
        // state exists to honor.
        let inputs = vec![
            BatchInput {
                name: "a.cfg".into(),
                text: " neighbor 9.9.9.9 route-map CHI-IMPORT in\n".into(),
            },
            BatchInput {
                name: "b.cfg".into(),
                text: "route-map CHI-IMPORT permit 10\n".into(),
            },
        ];
        let report = BatchPipeline::new(secret(), 2).run(&inputs);
        let use_tok = report.outputs[0]
            .text
            .split_whitespace()
            .nth(3)
            .expect("use site")
            .to_string();
        let def_tok = report.outputs[1]
            .text
            .split_whitespace()
            .nth(1)
            .expect("def site")
            .to_string();
        assert_eq!(use_tok, def_tok);
    }
}
