//! The registry of the 28 contextual rules.
//!
//! "In practice, we have discovered a set of 28 rules that is sufficient
//! for anonymizing the 200-plus IOS versions we have tested them on"
//! (§4.2). The paper gives the breakdown — 2 segmentation, 3 comment
//! stripping, 12 ASN location, 4 miscellaneous — and this registry names
//! our concrete realization of each. The [`crate::Anonymizer`] consults
//! the enabled-rule set before applying each behaviour, which is what
//! makes the §6.1 ablation/iteration experiments possible: disable a
//! locator, watch the leak scanner light up, re-enable it, converge.

use std::fmt;

/// Rule categories, matching the paper's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleCategory {
    /// Word segmentation before pass-list lookup (2 rules).
    Segmentation,
    /// Comment and banner stripping (3 rules).
    Comments,
    /// Locating AS numbers in their many syntactic homes (12 rules).
    AsnLocation,
    /// Miscellaneous identity leaks: phone numbers, hostnames, secrets,
    /// server literals (4 rules).
    Misc,
    /// Address and identifier transformation (7 rules).
    Identifiers,
}

impl RuleCategory {
    /// Stable kebab-case name, used as a metrics key.
    pub fn name(self) -> &'static str {
        match self {
            RuleCategory::Segmentation => "segmentation",
            RuleCategory::Comments => "comments",
            RuleCategory::AsnLocation => "asn-location",
            RuleCategory::Misc => "misc",
            RuleCategory::Identifiers => "identifiers",
        }
    }
}

/// Identifier of one of the 28 rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the table below documents each variant
pub enum RuleId {
    R01SplitAlphaRuns,
    R02SplitPunctuation,
    R03BangComments,
    R04DescriptionText,
    R05BannerBlocks,
    R06RouterBgpAsn,
    R07NeighborRemoteAs,
    R08AsPathPrepend,
    R09AsPathAccessListRegex,
    R10ConfederationIdentifier,
    R11ConfederationPeers,
    R12CommunityListPattern,
    R13SetCommunity,
    R14CommunityAttributeToken,
    R15NeighborLocalAs,
    R16BgpListenRange,
    R17ExtCommunityContext,
    R18DialerStrings,
    R19HostnameDomain,
    R20SecretsAndKeys,
    R21ServerLiterals,
    R22Ipv4Literal,
    R23PrefixToken,
    R24SubnetAddressPreserve,
    R25SpecialAddressPassthrough,
    R26TokenHashing,
    R27CommunityValueHashing,
    R28LeakHighlighting,
}

/// Static description of a rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule's identifier.
    pub id: RuleId,
    /// Category per the paper's breakdown.
    pub category: RuleCategory,
    /// Short name.
    pub name: &'static str,
    /// What the rule does and why.
    pub description: &'static str,
}

/// All 28 rules, in order.
pub const ALL_RULES: [RuleInfo; 28] = [
    RuleInfo {
        id: RuleId::R01SplitAlphaRuns,
        category: RuleCategory::Segmentation,
        name: "split-alpha-runs",
        description: "Segment words into alphabetic and non-alphabetic runs so \
                      `Ethernet0/0` checks `ethernet` against the pass-list and leaves `0/0`.",
    },
    RuleInfo {
        id: RuleId::R02SplitPunctuation,
        category: RuleCategory::Segmentation,
        name: "split-punctuation",
        description: "Treat punctuation runs as separators between independently \
                      checked alphabetic segments (`cr1.lax.foo.com`).",
    },
    RuleInfo {
        id: RuleId::R03BangComments,
        category: RuleCategory::Comments,
        name: "bang-comments",
        description: "Strip `!` comment text; keep the bare bang as a structural separator.",
    },
    RuleInfo {
        id: RuleId::R04DescriptionText,
        category: RuleCategory::Comments,
        name: "description-text",
        description: "Drop `description`/`remark` free text entirely — pass-list words in \
                      comments can still leak (`global crossing`).",
    },
    RuleInfo {
        id: RuleId::R05BannerBlocks,
        category: RuleCategory::Comments,
        name: "banner-blocks",
        description: "Drop multi-line banner bodies, tracking the per-banner delimiter.",
    },
    RuleInfo {
        id: RuleId::R06RouterBgpAsn,
        category: RuleCategory::AsnLocation,
        name: "router-bgp-asn",
        description: "`router bgp <asn>`: permute the process ASN.",
    },
    RuleInfo {
        id: RuleId::R07NeighborRemoteAs,
        category: RuleCategory::AsnLocation,
        name: "neighbor-remote-as",
        description: "`neighbor <ip> remote-as <asn>`: permute the peer ASN.",
    },
    RuleInfo {
        id: RuleId::R08AsPathPrepend,
        category: RuleCategory::AsnLocation,
        name: "as-path-prepend",
        description: "`set as-path prepend <asn>…`: permute every prepended ASN.",
    },
    RuleInfo {
        id: RuleId::R09AsPathAccessListRegex,
        category: RuleCategory::AsnLocation,
        name: "as-path-regexp",
        description: "`ip as-path access-list <n> permit <regexp>`: rewrite the regexp by \
                      language enumeration over all 2^16 ASNs.",
    },
    RuleInfo {
        id: RuleId::R10ConfederationIdentifier,
        category: RuleCategory::AsnLocation,
        name: "confed-identifier",
        description: "`bgp confederation identifier <asn>`: permute.",
    },
    RuleInfo {
        id: RuleId::R11ConfederationPeers,
        category: RuleCategory::AsnLocation,
        name: "confed-peers",
        description: "`bgp confederation peers <asn>…`: permute each.",
    },
    RuleInfo {
        id: RuleId::R12CommunityListPattern,
        category: RuleCategory::AsnLocation,
        name: "community-list-pattern",
        description: "`ip community-list <n> permit <pattern>`: map literal communities; \
                      rewrite community regexps (both halves).",
    },
    RuleInfo {
        id: RuleId::R13SetCommunity,
        category: RuleCategory::AsnLocation,
        name: "set-community",
        description: "`set community <asn:value>…`: map each community attribute.",
    },
    RuleInfo {
        id: RuleId::R14CommunityAttributeToken,
        category: RuleCategory::AsnLocation,
        name: "community-token",
        description: "Any bare `<asn>:<value>` token in BGP context: map both halves.",
    },
    RuleInfo {
        id: RuleId::R15NeighborLocalAs,
        category: RuleCategory::AsnLocation,
        name: "neighbor-local-as",
        description: "`neighbor <ip> local-as <asn>`: permute.",
    },
    RuleInfo {
        id: RuleId::R16BgpListenRange,
        category: RuleCategory::AsnLocation,
        name: "bgp-listen-range",
        description: "`bgp listen range <prefix> peer-group … remote-as <asn>` forms: permute.",
    },
    RuleInfo {
        id: RuleId::R17ExtCommunityContext,
        category: RuleCategory::AsnLocation,
        name: "extcommunity-context",
        description: "`set extcommunity rt|soo <asn:value>…`: permute the ASN half and \
                      the value half of extended-community route targets.",
    },
    RuleInfo {
        id: RuleId::R18DialerStrings,
        category: RuleCategory::Misc,
        name: "dialer-strings",
        description: "`dialer string <digits>`: phone numbers map to same-length keyed digits.",
    },
    RuleInfo {
        id: RuleId::R19HostnameDomain,
        category: RuleCategory::Misc,
        name: "hostname-domain",
        description: "`hostname`/`ip domain-name` arguments hash as whole tokens so domain \
                      structure does not survive segmentation.",
    },
    RuleInfo {
        id: RuleId::R20SecretsAndKeys,
        category: RuleCategory::Misc,
        name: "secrets-and-keys",
        description: "SNMP community strings, `username`/`password`/`secret`, tacacs/radius \
                      keys: hash as whole tokens.",
    },
    RuleInfo {
        id: RuleId::R21ServerLiterals,
        category: RuleCategory::Misc,
        name: "server-literals",
        description: "`ntp server`, `logging host`, `tacacs-server host`, name-server \
                      literals: addresses map, names hash whole.",
    },
    RuleInfo {
        id: RuleId::R22Ipv4Literal,
        category: RuleCategory::Identifiers,
        name: "ipv4-literal",
        description: "Every dotted-quad token maps through the prefix-preserving trie.",
    },
    RuleInfo {
        id: RuleId::R23PrefixToken,
        category: RuleCategory::Identifiers,
        name: "prefix-token",
        description: "`a.b.c.d/len` tokens map the network part, keep the length.",
    },
    RuleInfo {
        id: RuleId::R24SubnetAddressPreserve,
        category: RuleCategory::Identifiers,
        name: "subnet-address-preserve",
        description: "Host-part-all-zeros addresses map to all-zeros-suffix addresses \
                      (readability property of §3.2).",
    },
    RuleInfo {
        id: RuleId::R25SpecialAddressPassthrough,
        category: RuleCategory::Identifiers,
        name: "special-passthrough",
        description: "Netmasks, wildcards, multicast, loopback, link-local pass through \
                      unchanged; colliding images are recursively remapped.",
    },
    RuleInfo {
        id: RuleId::R26TokenHashing,
        category: RuleCategory::Identifiers,
        name: "token-hashing",
        description: "Alphabetic segments missing from the pass-list are replaced by salted \
                      SHA-1 digests, preserving referential integrity.",
    },
    RuleInfo {
        id: RuleId::R27CommunityValueHashing,
        category: RuleCategory::Identifiers,
        name: "community-value-permutation",
        description: "The integer half of community attributes is permuted — \"we have \
                      chosen to favor anonymity over information\".",
    },
    RuleInfo {
        id: RuleId::R28LeakHighlighting,
        category: RuleCategory::Identifiers,
        name: "leak-highlighting",
        description: "Record every public ASN and address seen pre-anonymization and grep \
                      the output for survivors (the §6.1 defence).",
    },
];

impl RuleId {
    /// Static info for this rule.
    ///
    /// `ALL_RULES` is declared in variant order, so the discriminant is
    /// the index; `rules_table_is_index_aligned` below pins that.
    pub fn info(self) -> &'static RuleInfo {
        &ALL_RULES[self as usize]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.info().name)
    }
}

/// Verdict of the rule-engine prefilter for one command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineClass {
    /// The line *may* trigger a contextual rule (R06–R21): the full
    /// lowered-token context matcher must run.
    ContextScan,
    /// No contextual rule can possibly fire on this line; the per-token
    /// pass (addresses, communities, segmentation + hashing) suffices.
    TokenLocal,
}

/// The contextual-rule prefilter: one cheap scan that decides whether a
/// line can trigger any of the context rules at all.
///
/// Every context arm in the anonymizer anchors a literal head keyword at
/// token 0 (`router`, `neighbor`, `set`, …), and the only context rule
/// that fires at an arbitrary token position — R20's
/// `password`/`secret`/`key`/`md5` trailer — requires one of those four
/// literals to appear *somewhere* in the line. So a line whose first
/// token matches none of the 13 heads and which contains none of the
/// four secret keywords as a substring provably cannot fire a context
/// rule, and the expensive path (lowercasing every token, running the
/// slice-pattern matcher, scanning for secret keywords token by token)
/// can be skipped without changing a byte of output or a single rule
/// fire count.
///
/// The filter is a *conservative superset*: false positives (e.g. a line
/// containing `keyboard`, which contains the substring `key`) merely run
/// the full matcher needlessly; false negatives are impossible by
/// construction. The determinism property suite cross-checks this on
/// random and chaos-mutated corpora.
pub struct Prefilter;

/// First tokens that can anchor a contextual-rule arm, grouped by first
/// byte. This is the *source* description; classification dispatches
/// through the fully-widened 256-entry tables below.
const RULE_HEADS_BY_BYTE: [(u8, &[&str]); 10] = [
    (b'b', &["bgp"]),
    (b'd', &["dialer"]),
    (b'h', &["hostname"]),
    (b'i', &["ip"]),
    (b'l', &["logging"]),
    (b'n', &["neighbor", "ntp"]),
    (b'r', &["router", "radius-server"]),
    (b's', &["set", "snmp-server"]),
    (b't', &["tacacs-server"]),
    (b'u', &["username"]),
];

/// Keywords whose presence *anywhere* on a line can trigger R20's
/// hash-after-keyword trailer.
const SECRET_KEYWORDS: [&[u8]; 4] = [b"password", b"secret", b"key", b"md5"];

/// The widened head-dispatch table: `HEAD_CANDIDATES[b]` is the list of
/// head keywords a first token starting with byte `b` could equal (empty
/// for the 236 bytes that start no head, which is the single-load fast
/// exit for most lines). Both cases of each head byte are populated so
/// no per-line lowercasing is needed to index.
static HEAD_CANDIDATES: [&[&str]; 256] = build_head_candidates();

const fn build_head_candidates() -> [&'static [&'static str]; 256] {
    let mut table: [&[&str]; 256] = [&[]; 256];
    let mut i = 0;
    while i < RULE_HEADS_BY_BYTE.len() {
        let (byte, heads) = RULE_HEADS_BY_BYTE[i];
        table[byte as usize] = heads;
        table[byte.to_ascii_uppercase() as usize] = heads;
        i += 1;
    }
    table
}

/// The widened secret-keyword dispatch table: `SECRET_CANDIDATE[b]` is
/// the one keyword that can start at a byte `b` (`p`/`s`/`k`/`m`, either
/// case), or the empty slice. The scan loop does one indexed load per
/// byte instead of a lowercase-and-match.
static SECRET_CANDIDATE: [&[u8]; 256] = build_secret_candidates();

const fn build_secret_candidates() -> [&'static [u8]; 256] {
    let mut table: [&[u8]; 256] = [&[]; 256];
    let firsts = [b'p', b's', b'k', b'm'];
    let mut i = 0;
    while i < firsts.len() {
        table[firsts[i] as usize] = SECRET_KEYWORDS[i];
        table[firsts[i].to_ascii_uppercase() as usize] = SECRET_KEYWORDS[i];
        i += 1;
    }
    table
}

impl Prefilter {
    /// Classifies one line. Case-insensitive, allocation-free.
    pub fn classify(line: &str) -> LineClass {
        if Self::head_can_anchor_rule(line) || Self::contains_secret_keyword(line) {
            LineClass::ContextScan
        } else {
            LineClass::TokenLocal
        }
    }

    /// Does the line's first token equal one of the 13 rule heads?
    /// Byte-class dispatched: the whitespace scan goes through
    /// [`confanon_iosparse::BYTE_CLASS`] and the candidate set comes from
    /// one [`HEAD_CANDIDATES`] load on the token's first byte.
    fn head_can_anchor_rule(line: &str) -> bool {
        use confanon_iosparse::{BYTE_CLASS, CLASS_WS};
        let bytes = line.as_bytes();
        let mut start = 0;
        while start < bytes.len() && BYTE_CLASS[bytes[start] as usize] & CLASS_WS != 0 {
            start += 1;
        }
        if start >= bytes.len() {
            return false;
        }
        let candidates = HEAD_CANDIDATES[bytes[start] as usize];
        if candidates.is_empty() {
            return false;
        }
        let mut end = start;
        while end < bytes.len() && BYTE_CLASS[bytes[end] as usize] & CLASS_WS == 0 {
            end += 1;
        }
        let head = &bytes[start..end];
        candidates.iter().any(|h| head.eq_ignore_ascii_case(h.as_bytes()))
    }

    /// Single pass over the line: one [`SECRET_CANDIDATE`] load per byte;
    /// at the few bytes with a candidate, compare the keyword in place.
    fn contains_secret_keyword(line: &str) -> bool {
        let bytes = line.as_bytes();
        for i in 0..bytes.len() {
            let kw = SECRET_CANDIDATE[bytes[i] as usize];
            if !kw.is_empty()
                && bytes.len() - i >= kw.len()
                && bytes[i..i + kw.len()].eq_ignore_ascii_case(kw)
            {
                return true;
            }
        }
        false
    }
}

/// Prefilter behaviour counters, kept *outside* [`crate::stats::AnonymizationStats`]
/// deliberately: cache state varies with work-stealing order on rewrite
/// clones, and per-file stats must stay byte-deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Lines classified [`LineClass::TokenLocal`] (context matcher skipped).
    pub fast_path_lines: u64,
    /// Lines classified [`LineClass::ContextScan`] (full matcher ran).
    pub slow_path_lines: u64,
    /// Classifications answered from the interned line cache. Unlike the
    /// two path counters (pure functions of line content), this varies
    /// with shard layout, so it reports under a timing-section metrics
    /// key.
    pub cache_hits: u64,
}

impl PrefilterStats {
    /// Adds another instance's counts (commutative).
    pub fn absorb(&mut self, other: &PrefilterStats) {
        self.fast_path_lines += other.fast_path_lines;
        self.slow_path_lines += other.slow_path_lines;
        self.cache_hits += other.cache_hits;
    }
}

/// Interned per-line classification cache in front of
/// [`Prefilter::classify`].
///
/// Router configs repeat lines heavily (`!`, ` no ip directed-broadcast`,
/// …), so most classifications are answered by one hash lookup. The
/// cache stores a pure function of the line text and is therefore
/// harmless to clone, clear, or cap: a hit and a miss produce the same
/// verdict. Insertion stops at a fixed cap so a hostile corpus of unique
/// lines cannot grow it without bound.
#[derive(Debug, Clone, Default)]
pub struct LineClassCache {
    map: std::collections::HashMap<String, LineClass>,
}

/// Distinct-line cap for [`LineClassCache`]; beyond it, classifications
/// still happen but are no longer interned.
const LINE_CACHE_CAP: usize = 4096;

/// Lines longer than this bypass the cache: repeated lines in real
/// configs are short boilerplate (` exit`, ` no shutdown`), while long
/// lines are identifier-bearing and nearly always unique, so hashing and
/// interning them costs more than the one [`Prefilter::classify`] scan
/// they would save.
const LINE_CACHE_MAX_LEN: usize = 96;

impl LineClassCache {
    /// Classifies `line`, consulting and (under the cap) populating the
    /// cache, and bumps the matching counters.
    pub fn classify(&mut self, line: &str, stats: &mut PrefilterStats) -> LineClass {
        if line.len() > LINE_CACHE_MAX_LEN {
            let c = Prefilter::classify(line);
            match c {
                LineClass::ContextScan => stats.slow_path_lines += 1,
                LineClass::TokenLocal => stats.fast_path_lines += 1,
            }
            return c;
        }
        let class = match self.map.get(line) {
            Some(&c) => {
                stats.cache_hits += 1;
                c
            }
            None => {
                let c = Prefilter::classify(line);
                if self.map.len() < LINE_CACHE_CAP {
                    self.map.insert(line.to_string(), c);
                }
                c
            }
        };
        match class {
            LineClass::ContextScan => stats.slow_path_lines += 1,
            LineClass::TokenLocal => stats.fast_path_lines += 1,
        }
        class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_28_rules() {
        assert_eq!(ALL_RULES.len(), 28);
    }

    #[test]
    fn rules_table_is_index_aligned() {
        // `RuleId::info` indexes ALL_RULES by discriminant; a reordered
        // table entry would silently mislabel every rule.
        for (i, rule) in ALL_RULES.iter().enumerate() {
            assert_eq!(rule.id as usize, i, "ALL_RULES[{i}] out of order");
        }
    }

    #[test]
    fn category_breakdown_matches_paper() {
        let count = |c: RuleCategory| ALL_RULES.iter().filter(|r| r.category == c).count();
        assert_eq!(count(RuleCategory::Segmentation), 2, "2 segmentation rules");
        assert_eq!(count(RuleCategory::Comments), 3, "3 comment rules");
        assert_eq!(count(RuleCategory::AsnLocation), 12, "12 ASN locators");
        assert_eq!(count(RuleCategory::Misc), 4, "4 misc rules");
        assert_eq!(count(RuleCategory::Identifiers), 7);
    }

    #[test]
    fn ids_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for r in &ALL_RULES {
            assert!(seen.insert(r.id), "duplicate {:?}", r.id);
            assert_eq!(r.id.info().id, r.id);
        }
    }

    #[test]
    fn display_uses_names() {
        assert_eq!(RuleId::R09AsPathAccessListRegex.to_string(), "as-path-regexp");
    }

    #[test]
    fn prefilter_flags_every_context_rule_anchor() {
        // One exemplar line per contextual arm of the matcher; the
        // prefilter may never classify any of them TokenLocal.
        let anchored = [
            "router bgp 701",
            " neighbor 10.0.0.2 remote-as 701",
            " neighbor 10.0.0.2 local-as 65000",
            " set as-path prepend 701 701",
            " bgp confederation identifier 701",
            " bgp confederation peers 702 703",
            " bgp listen range 10.0.0.0/8 peer-group PG remote-as 701",
            " set extcommunity rt 701:100",
            "ip as-path access-list 50 permit _701_",
            "ip community-list 1 permit 701:120",
            "ip community-list expanded CL permit _701:.*_",
            " set community 701:120 additive",
            "hostname cr1.foo.com",
            "ip domain-name foo.com",
            "ip domain name foo.com",
            "snmp-server community s3cr3t RO",
            "username admin password 7 094F471A",
            "dialer string 14155551234",
            "ntp server ntp.foo.com",
            "logging host log.foo.com",
            "tacacs-server host tac.foo.com",
            "radius-server host rad.foo.com",
            "ip name-server 1.2.3.4",
            // R20 trailer keywords at arbitrary positions:
            "enable secret 5 $1$abcd$efgh",
            "enable password 7 ABCD",
            " ip ospf message-digest-key 1 md5 s3cr3t",
            " standby 1 authentication md5 key-string k3y",
            "crypto isakmp key k3y address 0.0.0.0",
            // Case-insensitivity:
            "ROUTER BGP 701",
            "Enable SECRET 5 x",
        ];
        for line in anchored {
            assert_eq!(
                Prefilter::classify(line),
                LineClass::ContextScan,
                "prefilter missed {line:?}"
            );
        }
    }

    #[test]
    fn prefilter_fast_paths_common_token_local_lines() {
        // `ip …` lines anchor a head, so they stay on the slow path; the
        // genuinely fast lines have non-head first tokens and no secret
        // keywords.
        assert_eq!(
            Prefilter::classify(" ip address 1.2.3.4 255.255.255.0"),
            LineClass::ContextScan
        );
        let fast = [
            "interface Ethernet0/0",
            " no shutdown",
            " route-map CHI-IMPORT permit 10",
            " access-list 143 permit ip 1.2.3.0 0.0.0.255 any",
            "",
            "   ",
            "version 12.2",
        ];
        for line in fast {
            assert_eq!(
                Prefilter::classify(line),
                LineClass::TokenLocal,
                "prefilter slow-pathed {line:?}"
            );
        }
    }

    #[test]
    fn prefilter_is_substring_conservative() {
        // False positives are allowed (and expected) — `keyboard`
        // contains `key` — but head matching is whole-token, so a first
        // token merely *starting* with a head is not anchored.
        assert_eq!(Prefilter::classify("x keyboard y"), LineClass::ContextScan);
        assert_eq!(Prefilter::classify("ipx network 1"), LineClass::TokenLocal);
        assert_eq!(Prefilter::classify("settings on"), LineClass::TokenLocal);
    }

    #[test]
    fn widened_dispatch_tables_match_their_sources() {
        // The 256-entry tables are a pure widening of RULE_HEADS_BY_BYTE
        // and SECRET_KEYWORDS: populated at both cases of each source
        // byte, empty everywhere else.
        for b in 0u16..256 {
            let byte = b as u8;
            let source: &[&str] = RULE_HEADS_BY_BYTE
                .iter()
                .find(|(h, _)| *h == byte.to_ascii_lowercase())
                .map_or(&[], |(_, heads)| heads);
            assert_eq!(
                HEAD_CANDIDATES[b as usize], source,
                "HEAD_CANDIDATES wrong at byte {byte:#04x}"
            );
            let kw: &[u8] = match byte.to_ascii_lowercase() {
                b'p' => SECRET_KEYWORDS[0],
                b's' => SECRET_KEYWORDS[1],
                b'k' => SECRET_KEYWORDS[2],
                b'm' => SECRET_KEYWORDS[3],
                _ => &[],
            };
            assert_eq!(
                SECRET_CANDIDATE[b as usize], kw,
                "SECRET_CANDIDATE wrong at byte {byte:#04x}"
            );
        }
    }

    #[test]
    fn line_cache_hits_and_caps() {
        let mut cache = LineClassCache::default();
        let mut stats = PrefilterStats::default();
        assert_eq!(cache.classify("interface e0", &mut stats), LineClass::TokenLocal);
        assert_eq!(cache.classify("interface e0", &mut stats), LineClass::TokenLocal);
        assert_eq!(cache.classify("router bgp 1", &mut stats), LineClass::ContextScan);
        assert_eq!(stats.fast_path_lines, 2);
        assert_eq!(stats.slow_path_lines, 1);
        assert_eq!(stats.cache_hits, 1);

        // Past the cap, verdicts keep flowing (uncached) and stay right.
        for i in 0..5000 {
            cache.classify(&format!("unique line {i}"), &mut stats);
        }
        assert_eq!(
            cache.classify("router bgp 2", &mut stats),
            LineClass::ContextScan
        );
    }
}
