//! The registry of the 28 contextual rules.
//!
//! "In practice, we have discovered a set of 28 rules that is sufficient
//! for anonymizing the 200-plus IOS versions we have tested them on"
//! (§4.2). The paper gives the breakdown — 2 segmentation, 3 comment
//! stripping, 12 ASN location, 4 miscellaneous — and this registry names
//! our concrete realization of each. The [`crate::Anonymizer`] consults
//! the enabled-rule set before applying each behaviour, which is what
//! makes the §6.1 ablation/iteration experiments possible: disable a
//! locator, watch the leak scanner light up, re-enable it, converge.

use std::fmt;

/// Rule categories, matching the paper's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleCategory {
    /// Word segmentation before pass-list lookup (2 rules).
    Segmentation,
    /// Comment and banner stripping (3 rules).
    Comments,
    /// Locating AS numbers in their many syntactic homes (12 rules).
    AsnLocation,
    /// Miscellaneous identity leaks: phone numbers, hostnames, secrets,
    /// server literals (4 rules).
    Misc,
    /// Address and identifier transformation (7 rules).
    Identifiers,
}

impl RuleCategory {
    /// Stable kebab-case name, used as a metrics key.
    pub fn name(self) -> &'static str {
        match self {
            RuleCategory::Segmentation => "segmentation",
            RuleCategory::Comments => "comments",
            RuleCategory::AsnLocation => "asn-location",
            RuleCategory::Misc => "misc",
            RuleCategory::Identifiers => "identifiers",
        }
    }
}

/// Identifier of one of the 28 rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the table below documents each variant
pub enum RuleId {
    R01SplitAlphaRuns,
    R02SplitPunctuation,
    R03BangComments,
    R04DescriptionText,
    R05BannerBlocks,
    R06RouterBgpAsn,
    R07NeighborRemoteAs,
    R08AsPathPrepend,
    R09AsPathAccessListRegex,
    R10ConfederationIdentifier,
    R11ConfederationPeers,
    R12CommunityListPattern,
    R13SetCommunity,
    R14CommunityAttributeToken,
    R15NeighborLocalAs,
    R16BgpListenRange,
    R17ExtCommunityContext,
    R18DialerStrings,
    R19HostnameDomain,
    R20SecretsAndKeys,
    R21ServerLiterals,
    R22Ipv4Literal,
    R23PrefixToken,
    R24SubnetAddressPreserve,
    R25SpecialAddressPassthrough,
    R26TokenHashing,
    R27CommunityValueHashing,
    R28LeakHighlighting,
}

/// Static description of a rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule's identifier.
    pub id: RuleId,
    /// Category per the paper's breakdown.
    pub category: RuleCategory,
    /// Short name.
    pub name: &'static str,
    /// What the rule does and why.
    pub description: &'static str,
}

/// All 28 rules, in order.
pub const ALL_RULES: [RuleInfo; 28] = [
    RuleInfo {
        id: RuleId::R01SplitAlphaRuns,
        category: RuleCategory::Segmentation,
        name: "split-alpha-runs",
        description: "Segment words into alphabetic and non-alphabetic runs so \
                      `Ethernet0/0` checks `ethernet` against the pass-list and leaves `0/0`.",
    },
    RuleInfo {
        id: RuleId::R02SplitPunctuation,
        category: RuleCategory::Segmentation,
        name: "split-punctuation",
        description: "Treat punctuation runs as separators between independently \
                      checked alphabetic segments (`cr1.lax.foo.com`).",
    },
    RuleInfo {
        id: RuleId::R03BangComments,
        category: RuleCategory::Comments,
        name: "bang-comments",
        description: "Strip `!` comment text; keep the bare bang as a structural separator.",
    },
    RuleInfo {
        id: RuleId::R04DescriptionText,
        category: RuleCategory::Comments,
        name: "description-text",
        description: "Drop `description`/`remark` free text entirely — pass-list words in \
                      comments can still leak (`global crossing`).",
    },
    RuleInfo {
        id: RuleId::R05BannerBlocks,
        category: RuleCategory::Comments,
        name: "banner-blocks",
        description: "Drop multi-line banner bodies, tracking the per-banner delimiter.",
    },
    RuleInfo {
        id: RuleId::R06RouterBgpAsn,
        category: RuleCategory::AsnLocation,
        name: "router-bgp-asn",
        description: "`router bgp <asn>`: permute the process ASN.",
    },
    RuleInfo {
        id: RuleId::R07NeighborRemoteAs,
        category: RuleCategory::AsnLocation,
        name: "neighbor-remote-as",
        description: "`neighbor <ip> remote-as <asn>`: permute the peer ASN.",
    },
    RuleInfo {
        id: RuleId::R08AsPathPrepend,
        category: RuleCategory::AsnLocation,
        name: "as-path-prepend",
        description: "`set as-path prepend <asn>…`: permute every prepended ASN.",
    },
    RuleInfo {
        id: RuleId::R09AsPathAccessListRegex,
        category: RuleCategory::AsnLocation,
        name: "as-path-regexp",
        description: "`ip as-path access-list <n> permit <regexp>`: rewrite the regexp by \
                      language enumeration over all 2^16 ASNs.",
    },
    RuleInfo {
        id: RuleId::R10ConfederationIdentifier,
        category: RuleCategory::AsnLocation,
        name: "confed-identifier",
        description: "`bgp confederation identifier <asn>`: permute.",
    },
    RuleInfo {
        id: RuleId::R11ConfederationPeers,
        category: RuleCategory::AsnLocation,
        name: "confed-peers",
        description: "`bgp confederation peers <asn>…`: permute each.",
    },
    RuleInfo {
        id: RuleId::R12CommunityListPattern,
        category: RuleCategory::AsnLocation,
        name: "community-list-pattern",
        description: "`ip community-list <n> permit <pattern>`: map literal communities; \
                      rewrite community regexps (both halves).",
    },
    RuleInfo {
        id: RuleId::R13SetCommunity,
        category: RuleCategory::AsnLocation,
        name: "set-community",
        description: "`set community <asn:value>…`: map each community attribute.",
    },
    RuleInfo {
        id: RuleId::R14CommunityAttributeToken,
        category: RuleCategory::AsnLocation,
        name: "community-token",
        description: "Any bare `<asn>:<value>` token in BGP context: map both halves.",
    },
    RuleInfo {
        id: RuleId::R15NeighborLocalAs,
        category: RuleCategory::AsnLocation,
        name: "neighbor-local-as",
        description: "`neighbor <ip> local-as <asn>`: permute.",
    },
    RuleInfo {
        id: RuleId::R16BgpListenRange,
        category: RuleCategory::AsnLocation,
        name: "bgp-listen-range",
        description: "`bgp listen range <prefix> peer-group … remote-as <asn>` forms: permute.",
    },
    RuleInfo {
        id: RuleId::R17ExtCommunityContext,
        category: RuleCategory::AsnLocation,
        name: "extcommunity-context",
        description: "`set extcommunity rt|soo <asn:value>…`: permute the ASN half and \
                      the value half of extended-community route targets.",
    },
    RuleInfo {
        id: RuleId::R18DialerStrings,
        category: RuleCategory::Misc,
        name: "dialer-strings",
        description: "`dialer string <digits>`: phone numbers map to same-length keyed digits.",
    },
    RuleInfo {
        id: RuleId::R19HostnameDomain,
        category: RuleCategory::Misc,
        name: "hostname-domain",
        description: "`hostname`/`ip domain-name` arguments hash as whole tokens so domain \
                      structure does not survive segmentation.",
    },
    RuleInfo {
        id: RuleId::R20SecretsAndKeys,
        category: RuleCategory::Misc,
        name: "secrets-and-keys",
        description: "SNMP community strings, `username`/`password`/`secret`, tacacs/radius \
                      keys: hash as whole tokens.",
    },
    RuleInfo {
        id: RuleId::R21ServerLiterals,
        category: RuleCategory::Misc,
        name: "server-literals",
        description: "`ntp server`, `logging host`, `tacacs-server host`, name-server \
                      literals: addresses map, names hash whole.",
    },
    RuleInfo {
        id: RuleId::R22Ipv4Literal,
        category: RuleCategory::Identifiers,
        name: "ipv4-literal",
        description: "Every dotted-quad token maps through the prefix-preserving trie.",
    },
    RuleInfo {
        id: RuleId::R23PrefixToken,
        category: RuleCategory::Identifiers,
        name: "prefix-token",
        description: "`a.b.c.d/len` tokens map the network part, keep the length.",
    },
    RuleInfo {
        id: RuleId::R24SubnetAddressPreserve,
        category: RuleCategory::Identifiers,
        name: "subnet-address-preserve",
        description: "Host-part-all-zeros addresses map to all-zeros-suffix addresses \
                      (readability property of §3.2).",
    },
    RuleInfo {
        id: RuleId::R25SpecialAddressPassthrough,
        category: RuleCategory::Identifiers,
        name: "special-passthrough",
        description: "Netmasks, wildcards, multicast, loopback, link-local pass through \
                      unchanged; colliding images are recursively remapped.",
    },
    RuleInfo {
        id: RuleId::R26TokenHashing,
        category: RuleCategory::Identifiers,
        name: "token-hashing",
        description: "Alphabetic segments missing from the pass-list are replaced by salted \
                      SHA-1 digests, preserving referential integrity.",
    },
    RuleInfo {
        id: RuleId::R27CommunityValueHashing,
        category: RuleCategory::Identifiers,
        name: "community-value-permutation",
        description: "The integer half of community attributes is permuted — \"we have \
                      chosen to favor anonymity over information\".",
    },
    RuleInfo {
        id: RuleId::R28LeakHighlighting,
        category: RuleCategory::Identifiers,
        name: "leak-highlighting",
        description: "Record every public ASN and address seen pre-anonymization and grep \
                      the output for survivors (the §6.1 defence).",
    },
];

impl RuleId {
    /// Static info for this rule.
    ///
    /// `ALL_RULES` is declared in variant order, so the discriminant is
    /// the index; `rules_table_is_index_aligned` below pins that.
    pub fn info(self) -> &'static RuleInfo {
        &ALL_RULES[self as usize]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.info().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_28_rules() {
        assert_eq!(ALL_RULES.len(), 28);
    }

    #[test]
    fn rules_table_is_index_aligned() {
        // `RuleId::info` indexes ALL_RULES by discriminant; a reordered
        // table entry would silently mislabel every rule.
        for (i, rule) in ALL_RULES.iter().enumerate() {
            assert_eq!(rule.id as usize, i, "ALL_RULES[{i}] out of order");
        }
    }

    #[test]
    fn category_breakdown_matches_paper() {
        let count = |c: RuleCategory| ALL_RULES.iter().filter(|r| r.category == c).count();
        assert_eq!(count(RuleCategory::Segmentation), 2, "2 segmentation rules");
        assert_eq!(count(RuleCategory::Comments), 3, "3 comment rules");
        assert_eq!(count(RuleCategory::AsnLocation), 12, "12 ASN locators");
        assert_eq!(count(RuleCategory::Misc), 4, "4 misc rules");
        assert_eq!(count(RuleCategory::Identifiers), 7);
    }

    #[test]
    fn ids_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for r in &ALL_RULES {
            assert!(seen.insert(r.id), "duplicate {:?}", r.id);
            assert_eq!(r.id.info().id, r.id);
        }
    }

    #[test]
    fn display_uses_names() {
        assert_eq!(RuleId::R09AsPathAccessListRegex.to_string(), "as-path-regexp");
    }
}
