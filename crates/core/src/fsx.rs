//! Crash-safe durable writes: the storage layer every released byte
//! passes through.
//!
//! The fail-closed contract of §9 (DESIGN.md) covers *what* may be
//! released; this module covers *how*. A corpus run that dies mid-write
//! — crash, `kill -9`, ENOSPC — must never leave a torn, half-anonymized
//! file that an operator could mistake for a complete one. Following the
//! crash-consistency discipline of journaled systems (write-ahead intent
//! plus atomic rename publish, the pattern ALICE-style crash-consistency
//! testing assumes), every output is made visible in one step:
//!
//! 1. the bytes are written to a temp file *in the target directory*
//!    (same filesystem, so the rename cannot degrade to a copy),
//! 2. the temp file is `fsync`ed (`sync_all`) so its contents are on
//!    stable storage before the name appears,
//! 3. the temp file is renamed over the target — atomic on POSIX —
//! 4. and the parent directory is `fsync`ed so the rename itself
//!    survives a power cut.
//!
//! At every observable point the target path either holds the complete
//! previous content (or nothing) or the complete new content.
//!
//! All filesystem touchpoints go through the injectable [`Fs`] trait:
//! production uses [`StdFs`]; tests use `confanon_testkit::faultfs::
//! FaultFs`, which injects seeded torn writes, transient errors, and
//! rename failures so the all-or-nothing property is *tested*, not
//! assumed. Transient errors (EINTR and friends) are retried with
//! bounded backoff; everything else is classified into
//! [`AnonError::Io`].
//!
//! ## Deterministic crash injection
//!
//! When the environment variable `CONFANON_CRASH_AFTER=N` (N ≥ 1) is
//! set, the process aborts — no unwinding, no destructors, as a real
//! crash would — immediately after the N-th durable write completes.
//! Because every durable write in a batch run happens on one thread in
//! a deterministic order, crash point N is the same state at any
//! `--jobs` value, which is what lets `tests/crash_resume.rs` enumerate
//! every crash point and prove `--resume` reconstructs the released set
//! byte-for-byte.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use confanon_testkit::faultfs::FaultFs;
use confanon_testkit::json::Json;

use crate::error::AnonError;

/// Suffix of the temp files [`write_atomic`] stages bytes in. A crash
/// between steps 1 and 3 can leave one behind; resume sweeps them by
/// this suffix (see [`is_tmp_path`]).
pub const TMP_SUFFIX: &str = ".fsx-tmp";

/// Attempts per write (first try plus retries of transient errors).
const MAX_ATTEMPTS: u32 = 4;

/// True if `path` is one of [`write_atomic`]'s staging files.
pub fn is_tmp_path(path: &Path) -> bool {
    path.file_name()
        .map(|n| n.to_string_lossy().ends_with(TMP_SUFFIX))
        .unwrap_or(false)
}

/// The filesystem operations the durability layer needs, injectable so
/// the fault-injection suite can exercise every failure edge.
pub trait Fs {
    /// Recursively creates `dir` (and parents).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (truncating) `path`, writes all of `bytes`, and syncs the
    /// file's data and metadata to stable storage.
    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory here).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Syncs the directory entry table of `dir` (durability of renames).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file; used for staging cleanup and rollback.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Reads a whole file (resume verification).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;
    /// Reads a whole file for scanning, possibly as a memory-mapped
    /// region ([`FileBytes::is_mapped`]) instead of an owned buffer.
    ///
    /// The default implementation is the buffered fallback — it
    /// delegates to [`Fs::read`] — so every injectable filesystem
    /// (notably `FaultFs`) inherits correct behavior, and the
    /// mmap-vs-buffered identity property holds by construction for
    /// them. [`StdFs`] overrides this on Linux for large files.
    fn read_mapped(&self, path: &Path) -> io::Result<FileBytes> {
        self.read(path).map(FileBytes::owned)
    }
}

/// Smallest file, in bytes, that [`StdFs::read_mapped`] memory-maps.
/// Below this a buffered read is faster (one small `read(2)` beats a
/// page-table update plus minor faults) and the map would round up to a
/// whole page anyway.
pub const MMAP_MIN_LEN: u64 = 64 * 1024;

/// Bytes of one input file: an owned buffer, or on Linux a read-only
/// private memory mapping. Dereferences to `&[u8]` either way, so
/// callers scan the two representations identically; the mapping is
/// released on drop.
pub struct FileBytes(FileBytesRepr);

enum FileBytesRepr {
    Owned(Vec<u8>),
    #[cfg(target_os = "linux")]
    Mapped(mmap_linux::Mmap),
}

impl FileBytes {
    /// Wraps an owned buffer.
    pub fn owned(bytes: Vec<u8>) -> FileBytes {
        FileBytes(FileBytesRepr::Owned(bytes))
    }

    /// True when the bytes are a memory-mapped region rather than an
    /// owned buffer (observability counters want the split).
    pub fn is_mapped(&self) -> bool {
        match &self.0 {
            FileBytesRepr::Owned(_) => false,
            #[cfg(target_os = "linux")]
            FileBytesRepr::Mapped(_) => true,
        }
    }
}

impl std::ops::Deref for FileBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.0 {
            FileBytesRepr::Owned(v) => v,
            #[cfg(target_os = "linux")]
            FileBytesRepr::Mapped(m) => m.as_slice(),
        }
    }
}

impl AsRef<[u8]> for FileBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Minimal read-only `mmap(2)` binding. Implemented against raw libc
/// syscall wrappers (`std` already links libc on Linux) because this
/// repo is dependency-free by policy; the `unsafe` surface is confined
/// to this module and consists of the two FFI calls plus the
/// slice-from-raw-parts view over the mapping.
#[cfg(target_os = "linux")]
mod mmap_linux {
    use std::ffi::c_void;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of one file.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never mutated or remapped
    // after construction; the underlying pages are valid until `drop`
    // calls `munmap`. Shared references to immutable memory are safe to
    // send and share across threads.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only. `len` must be non-zero
        /// (mmap rejects zero-length maps) and no larger than the file.
        pub fn map(file: &std::fs::File, len: usize) -> io::Result<Mmap> {
            debug_assert!(len > 0, "zero-length maps are the caller's fallback case");
            // SAFETY: fd is a valid open file descriptor for the life of
            // this call; we request a fresh address (addr = null) and a
            // private read-only mapping, so no existing memory is
            // affected.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (established in `map`, released only in `drop`).
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the mapping created in `map`,
            // unmapped exactly once here.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// The production filesystem: plain `std::fs` plus real fsyncs.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl Fs for StdFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use io::Write;
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    #[cfg(unix)]
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // On Unix a directory opens read-only and fsyncs its entry table.
        std::fs::File::open(dir)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        // No portable directory fsync; rename durability is best-effort.
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    /// On Linux, files of at least [`MMAP_MIN_LEN`] bytes are mapped
    /// read-only instead of copied into a buffer; empty and small files,
    /// and any file whose `mmap(2)` fails, fall back to the buffered
    /// read. Either representation yields identical bytes.
    #[cfg(target_os = "linux")]
    fn read_mapped(&self, path: &Path) -> io::Result<FileBytes> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len >= MMAP_MIN_LEN {
            if let Ok(map) = mmap_linux::Mmap::map(&file, len as usize) {
                return Ok(FileBytes(FileBytesRepr::Mapped(map)));
            }
        }
        self.read(path).map(FileBytes::owned)
    }
}

/// Counters for the durability layer: what atomic persistence costs, so
/// `BENCH_durability.json` can report the overhead against plain writes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Completed atomic publishes (temp + sync + rename + dir sync).
    pub atomic_writes: u64,
    /// `fsync` calls issued (one per temp file, one per directory).
    pub fsyncs: u64,
    /// Transient errors absorbed by retry instead of failing the run.
    pub transient_retries: u64,
    /// Permanent errors (ENOSPC, EACCES, EIO...) that failed a publish
    /// outright — what pushes a serve tenant into DEGRADED mode.
    pub permanent_failures: u64,
}

impl DurabilityStats {
    /// Accumulates another counter block into this one.
    pub fn merge(&mut self, other: &DurabilityStats) {
        self.atomic_writes += other.atomic_writes;
        self.fsyncs += other.fsyncs;
        self.transient_retries += other.transient_retries;
        self.permanent_failures += other.permanent_failures;
    }

    /// The counters as a JSON object (for bench reports).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("atomic_writes", self.atomic_writes)
            .with("fsyncs", self.fsyncs)
            .with("transient_retries", self.transient_retries)
            .with("permanent_failures", self.permanent_failures)
    }
}

/// Is this error worth retrying? EINTR-class conditions clear on their
/// own; everything else (ENOSPC, EACCES, EIO...) is permanent and must
/// surface as [`AnonError::Io`].
fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn io_error(target: &Path, e: &io::Error) -> AnonError {
    AnonError::Io {
        path: target.display().to_string(),
        message: e.to_string(),
    }
}

/// Process-unique sequence for staging-file names; two concurrent
/// writers in one process can never collide on a temp path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Durable writes completed by this process (feeds the crash hook).
static DURABLE_WRITES: AtomicU64 = AtomicU64::new(0);

/// Cached `CONFANON_CRASH_AFTER` (0 / absent / unparseable = disabled).
static CRASH_AFTER: OnceLock<u64> = OnceLock::new();

/// Durable writes completed so far by this process.
pub fn durable_writes_completed() -> u64 {
    DURABLE_WRITES.load(Ordering::SeqCst)
}

/// The deterministic crash hook: called once per completed durable
/// write; aborts the process (as a crash would — no unwinding, no
/// cleanup) when the configured write count is reached.
fn crash_hook_tick(target: &Path) {
    let limit = *CRASH_AFTER.get_or_init(|| {
        std::env::var("CONFANON_CRASH_AFTER")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    });
    let done = DURABLE_WRITES.fetch_add(1, Ordering::SeqCst) + 1;
    if limit > 0 && done >= limit {
        eprintln!(
            "CONFANON_CRASH_AFTER: simulating crash after {done} durable write(s) \
             (last: {})",
            target.display()
        );
        std::process::abort();
    }
}

/// Publishes `bytes` at `target` atomically and durably.
///
/// Either the call returns `Ok` and `target` holds exactly `bytes` on
/// stable storage, or it returns `Err` and `target` is untouched (a
/// pre-existing file keeps its old content; a fresh path stays absent)
/// with no staging file left behind. Transient errors are retried up to
/// up to 4 times with linear backoff; `stats` counts completed
/// publishes, fsyncs, and absorbed retries.
pub fn write_atomic(
    fs: &dyn Fs,
    target: &Path,
    bytes: &[u8],
    stats: &mut DurabilityStats,
) -> Result<(), AnonError> {
    let parent = match target.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Some(name) = target.file_name().map(|n| n.to_string_lossy().to_string()) else {
        return Err(AnonError::Io {
            path: target.display().to_string(),
            message: "target has no file name".to_string(),
        });
    };
    fs.create_dir_all(&parent).map_err(|e| io_error(target, &e))?;
    let existed_before = fs.exists(target);

    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = parent.join(format!(".{name}.{}.{seq}{TMP_SUFFIX}", std::process::id()));

        // Step 1+2: stage and sync the bytes under a name nobody reads.
        if let Err(e) = fs.write_sync(&tmp, bytes) {
            let _ = fs.remove_file(&tmp);
            if is_transient(e.kind()) && attempt < MAX_ATTEMPTS {
                stats.transient_retries += 1;
                std::thread::sleep(Duration::from_millis(u64::from(attempt)));
                continue;
            }
            stats.permanent_failures += 1;
            return Err(io_error(target, &e));
        }
        // Step 3: publish in one atomic step.
        if let Err(e) = fs.rename(&tmp, target) {
            let _ = fs.remove_file(&tmp);
            if is_transient(e.kind()) && attempt < MAX_ATTEMPTS {
                stats.transient_retries += 1;
                std::thread::sleep(Duration::from_millis(u64::from(attempt)));
                continue;
            }
            stats.permanent_failures += 1;
            return Err(io_error(target, &e));
        }
        // Step 4: make the rename durable. A permanent failure here
        // leaves a file whose durability is unknown — fail closed: roll
        // a fresh path back to "absent" (an overwritten target keeps
        // its new complete content; removing it would destroy the only
        // copy of a journal).
        let mut sync_attempt = 0u32;
        loop {
            sync_attempt += 1;
            match fs.sync_dir(&parent) {
                Ok(()) => break,
                Err(e) if is_transient(e.kind()) && sync_attempt < MAX_ATTEMPTS => {
                    stats.transient_retries += 1;
                    std::thread::sleep(Duration::from_millis(u64::from(sync_attempt)));
                }
                Err(e) => {
                    if !existed_before {
                        let _ = fs.remove_file(target);
                        let _ = fs.sync_dir(&parent);
                    }
                    stats.permanent_failures += 1;
                    return Err(io_error(target, &e));
                }
            }
        }

        stats.atomic_writes += 1;
        stats.fsyncs += 2; // temp file + directory
        crash_hook_tick(target);
        return Ok(());
    }
}

/// The testkit fault injector is a first-class [`Fs`]: the property
/// suites drive [`write_atomic`] through seeded torn writes, transient
/// errors, and rename failures. (The struct lives in testkit — which
/// core depends on, not vice versa — so the trait impl lives here.)
impl Fs for confanon_testkit::faultfs::FaultFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        FaultFs::create_dir_all(self, dir)
    }
    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        FaultFs::write_sync(self, path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        FaultFs::rename(self, from, to)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        FaultFs::sync_dir(self, dir)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        FaultFs::remove_file(self, path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        FaultFs::read(self, path)
    }
    fn exists(&self, path: &Path) -> bool {
        FaultFs::exists(self, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "confanon-fsx-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mk tmpdir");
        d
    }

    fn dir_entries(dir: &Path) -> Vec<String> {
        let mut v: Vec<String> = std::fs::read_dir(dir)
            .expect("read dir")
            .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().to_string()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn std_write_atomic_round_trips() {
        let dir = tmpdir("std");
        let target = dir.join("out.anon");
        let mut stats = DurabilityStats::default();
        write_atomic(&StdFs, &target, b"hello config\n", &mut stats).expect("write");
        assert_eq!(std::fs::read(&target).expect("read"), b"hello config\n");
        assert_eq!(stats.atomic_writes, 1);
        assert_eq!(stats.fsyncs, 2);
        assert_eq!(dir_entries(&dir), vec!["out.anon".to_string()], "no temp residue");
        // Overwrite keeps atomicity and replaces content.
        write_atomic(&StdFs, &target, b"v2\n", &mut stats).expect("rewrite");
        assert_eq!(std::fs::read(&target).expect("read"), b"v2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = tmpdir("parents");
        let target = dir.join("a/b/c.anon");
        let mut stats = DurabilityStats::default();
        write_atomic(&StdFs, &target, b"x", &mut stats).expect("write");
        assert_eq!(std::fs::read(&target).expect("read"), b"x");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_path_predicate_matches_staging_names() {
        assert!(is_tmp_path(Path::new("/x/.out.anon.7.3.fsx-tmp")));
        assert!(!is_tmp_path(Path::new("/x/out.anon")));
        assert!(!is_tmp_path(Path::new("/x")));
    }

    #[test]
    fn read_mapped_matches_buffered_read_at_every_size_class() {
        // Below, at, and above the mmap threshold, plus empty: identical
        // bytes from both paths, and on Linux the large file actually
        // maps.
        let dir = tmpdir("mmap");
        let sizes = [
            0usize,
            17,
            MMAP_MIN_LEN as usize - 1,
            MMAP_MIN_LEN as usize,
            MMAP_MIN_LEN as usize * 2 + 311,
        ];
        for (i, n) in sizes.into_iter().enumerate() {
            let path = dir.join(format!("f{i}.cfg"));
            let bytes: Vec<u8> = (0..n).map(|j| (j % 251) as u8).collect();
            std::fs::write(&path, &bytes).expect("write");
            let mapped = StdFs.read_mapped(&path).expect("read_mapped");
            assert_eq!(&*mapped, &bytes[..], "size {n}");
            assert_eq!(mapped.as_ref(), StdFs.read(&path).expect("read"), "size {n}");
            if cfg!(target_os = "linux") {
                assert_eq!(
                    mapped.is_mapped(),
                    n as u64 >= MMAP_MIN_LEN,
                    "size {n} mapped-ness"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_bytes_outlive_scanning_threads() {
        // The Send + Sync contract: a mapping can be scanned from worker
        // threads, as the batch pipeline does with input text.
        let dir = tmpdir("mmap-threads");
        let path = dir.join("big.cfg");
        let bytes = vec![0xA5u8; MMAP_MIN_LEN as usize];
        std::fs::write(&path, &bytes).expect("write");
        let mapped = StdFs.read_mapped(&path).expect("read_mapped");
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| assert!(mapped.iter().all(|&b| b == 0xA5)));
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = DurabilityStats {
            atomic_writes: 1,
            fsyncs: 2,
            transient_retries: 3,
            permanent_failures: 4,
        };
        a.merge(&DurabilityStats {
            atomic_writes: 10,
            fsyncs: 20,
            transient_retries: 30,
            permanent_failures: 40,
        });
        assert_eq!(a.atomic_writes, 11);
        assert_eq!(a.fsyncs, 22);
        assert_eq!(a.transient_retries, 33);
        assert_eq!(a.permanent_failures, 44);
        assert!(a.to_json().get("fsyncs").is_some());
        assert!(a.to_json().get("permanent_failures").is_some());
    }

    #[test]
    fn enospc_is_a_counted_permanent_failure_and_heals() {
        let dir = tmpdir("enospc");
        let fs = FaultFs::quiet(5);
        fs.set_enospc(true);
        let mut stats = DurabilityStats::default();
        let target = dir.join("out.anon");
        let err = write_atomic(&fs, &target, b"x", &mut stats).expect_err("full disk");
        assert!(err.to_string().contains("no space left"), "{err}");
        assert_eq!(stats.permanent_failures, 1);
        assert_eq!(stats.atomic_writes, 0);
        assert!(!target.exists(), "failed publish must not surface a target");
        // Device freed: the same path publishes cleanly.
        fs.set_enospc(false);
        write_atomic(&fs, &target, b"x", &mut stats).expect("healed write");
        assert_eq!(stats.atomic_writes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- fault-injection properties (testkit FaultFs) ------------------

    confanon_testkit::props! {
        cases = 96;

        /// The central all-or-nothing property: under arbitrary seeded
        /// faults, a fresh target either holds the complete bytes (on
        /// Ok) or does not exist (on Err) — and no staging file
        /// survives either way.
        fn faulted_write_publishes_fully_or_not_at_all(seed in 0u64..1_000_000) {
            let dir = tmpdir("fault");
            let fs = FaultFs::new(seed);
            let target = dir.join("out.anon");
            let payload = b"line one\nline two\nline three\n";
            let mut stats = DurabilityStats::default();
            match write_atomic(&fs, &target, payload, &mut stats) {
                Ok(()) => {
                    assert_eq!(
                        std::fs::read(&target).expect("published file"),
                        payload,
                        "seed {seed}: published bytes must be complete"
                    );
                }
                Err(e) => {
                    assert!(
                        !target.exists(),
                        "seed {seed}: failed write left a file at the target: {e}"
                    );
                }
            }
            for entry in dir_entries(&dir) {
                assert!(
                    !entry.ends_with(TMP_SUFFIX),
                    "seed {seed}: staging file {entry} survived"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// A bounded number of transient faults is absorbed by retry:
        /// the write still succeeds and the retries are counted.
        fn transient_faults_are_retried_to_success(seed in 0u64..1_000_000) {
            let dir = tmpdir("transient");
            // Transient-only faults, at most 2 of them: MAX_ATTEMPTS of
            // 4 must always absorb the budget.
            let fs = FaultFs::transient_only(seed).with_fault_budget(2);
            let target = dir.join("out.anon");
            let mut stats = DurabilityStats::default();
            write_atomic(&fs, &target, b"payload", &mut stats)
                .expect("bounded transient faults must not fail the write");
            assert_eq!(std::fs::read(&target).expect("read"), b"payload");
            assert_eq!(stats.transient_retries, fs.faults_injected());
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// An overwritten target is never torn: at every point it holds
        /// one of the two *complete* contents. (A failed overwrite may
        /// legitimately land on the new bytes — when only the final
        /// directory sync failed, after the atomic rename — but never on
        /// a mixture or a prefix.)
        fn failed_overwrite_is_never_torn(seed in 0u64..1_000_000) {
            let dir = tmpdir("overwrite");
            let target = dir.join("out.anon");
            let mut stats = DurabilityStats::default();
            write_atomic(&StdFs, &target, b"old complete content\n", &mut stats)
                .expect("seed write");
            let fs = FaultFs::new(seed);
            match write_atomic(&fs, &target, b"new content\n", &mut stats) {
                Ok(()) => assert_eq!(std::fs::read(&target).expect("read"), b"new content\n"),
                Err(_) => {
                    let on_disk = std::fs::read(&target).expect("read");
                    assert!(
                        on_disk == b"old complete content\n" || on_disk == b"new content\n",
                        "seed {seed}: failed overwrite tore the target: {on_disk:?}"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
