//! Structured errors for the fail-closed pipeline.
//!
//! The paper's §6.1 defense is an *iterative human loop*; a production
//! sharing tool additionally needs machine-checkable failure taxonomy so
//! that automation can distinguish "the disk is broken" from "a worker
//! panicked on one hostile file" from "the leak gate refused to release
//! output". [`AnonError`] is that taxonomy, and [`BatchFailure`] is the
//! per-file record the batch pipeline emits instead of crashing.

use std::fmt;

/// The phase of the batch pipeline in which a per-file failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BatchPhase {
    /// Sequential identifier-discovery pass.
    Discover,
    /// Emit pass (sequential or parallel rewrite workers).
    Rewrite,
    /// Post-emission §6.1 leak scan.
    Scan,
}

impl BatchPhase {
    /// Stable lowercase name, used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            BatchPhase::Discover => "discover",
            BatchPhase::Rewrite => "rewrite",
            BatchPhase::Scan => "scan",
        }
    }

    /// Parses the name produced by [`BatchPhase::name`].
    pub fn parse(name: &str) -> Option<BatchPhase> {
        match name {
            "discover" => Some(BatchPhase::Discover),
            "rewrite" => Some(BatchPhase::Rewrite),
            "scan" => Some(BatchPhase::Scan),
            _ => None,
        }
    }
}

impl fmt::Display for BatchPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One file the batch pipeline could not process. The file's output is
/// withheld (fail closed); every other file of the corpus still emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFailure {
    /// The input's display name.
    pub name: String,
    /// Where the failure happened.
    pub phase: BatchPhase,
    /// Human-readable cause (typically a contained panic message).
    pub cause: String,
}

impl fmt::Display for BatchFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.name, self.phase, self.cause)
    }
}

/// Why a persisted state directory was refused. Each kind carries its
/// own stable name so CLI regression tests (and operators) can tell a
/// stale-format state from a wrong-secret one from a corrupted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateErrorKind {
    /// The state file's schema tag is not the supported version.
    VersionMismatch,
    /// The state was written under a different owner secret (or its
    /// permutation parameters no longer match).
    FingerprintMismatch,
    /// The state file is truncated, unparseable, structurally invalid,
    /// or its journal replay failed the trie structure check.
    Corrupted,
}

impl StateErrorKind {
    /// Stable lowercase name, used in error messages and tests.
    pub fn name(self) -> &'static str {
        match self {
            StateErrorKind::VersionMismatch => "state version mismatch",
            StateErrorKind::FingerprintMismatch => "state fingerprint mismatch",
            StateErrorKind::Corrupted => "state corrupted",
        }
    }
}

impl fmt::Display for StateErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Structured pipeline error. Each variant maps to one distinct CLI exit
/// code (see the `confanon` binary): automation can branch on the class
/// without parsing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnonError {
    /// Reading an input or writing an output failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// One or more files died inside panic containment; their outputs
    /// were withheld and the rest of the corpus completed.
    PanicContained {
        /// Per-file failure records, in input order.
        failures: Vec<BatchFailure>,
    },
    /// The §6.1 gate found residual recorded identifiers in some
    /// outputs; those files were quarantined, not emitted.
    LeakGated {
        /// Number of files quarantined.
        files: usize,
        /// Total flagged lines across them.
        leaks: usize,
    },
    /// A machine-readable input (leak record, report) failed to parse.
    InvalidInput {
        /// What was wrong.
        message: String,
    },
    /// A durable write failed *after* the run journal was safely on
    /// disk: nothing released is torn, the manifest accounts for every
    /// published byte, and the run can continue with `--resume` instead
    /// of restarting.
    ResumableInterrupted {
        /// The path whose write failed.
        path: String,
        /// The underlying OS error message.
        message: String,
    },
    /// A persisted anonymizer state (`--state DIR`) was present but
    /// unusable: wrong schema version, wrong owner secret, or corrupted.
    /// Refusing is fail-closed — silently starting cold would fork the
    /// mapping history the state exists to keep stable.
    StateInvalid {
        /// The state file involved.
        path: String,
        /// Which precondition failed.
        kind: StateErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// The serve daemon could not bind its listen endpoint (TCP address
    /// or Unix socket path). Nothing was served; no tenant state was
    /// touched.
    BindFailed {
        /// The endpoint as given (`host:port` or `unix:PATH`).
        addr: String,
        /// The underlying OS error message.
        message: String,
    },
    /// A machine-readable configuration file (`confanon.toml`) failed
    /// to parse or violated a structural requirement (duplicate tenant,
    /// missing secret, no endpoint).
    ConfigInvalid {
        /// The config file involved.
        path: String,
        /// What was wrong, with a line number where applicable.
        message: String,
    },
    /// `--require-clean-state`: a tenant's persisted state directory
    /// was present but unusable, and the operator asked for refusal at
    /// startup instead of the default per-tenant quarantine.
    TenantStateRefused {
        /// The tenant whose state was refused.
        tenant: String,
        /// The underlying state defect.
        message: String,
    },
}

impl fmt::Display for AnonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnonError::Io { path, message } => write!(f, "I/O error on {path}: {message}"),
            AnonError::PanicContained { failures } => write!(
                f,
                "{} file(s) failed inside panic containment (outputs withheld)",
                failures.len()
            ),
            AnonError::LeakGated { files, leaks } => write!(
                f,
                "leak gate: {leaks} residual hit(s) across {files} file(s) quarantined"
            ),
            AnonError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            AnonError::ResumableInterrupted { path, message } => write!(
                f,
                "run interrupted (manifest intact): {path}: {message}; \
                 re-run with --resume to continue"
            ),
            AnonError::StateInvalid { path, kind, message } => {
                write!(f, "{kind} at {path}: {message}")
            }
            AnonError::BindFailed { addr, message } => {
                write!(f, "bind failed on {addr}: {message}")
            }
            AnonError::ConfigInvalid { path, message } => {
                write!(f, "invalid config {path}: {message}")
            }
            AnonError::TenantStateRefused { tenant, message } => {
                write!(f, "tenant {tenant:?} state refused: {message}")
            }
        }
    }
}

impl std::error::Error for AnonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for p in [BatchPhase::Discover, BatchPhase::Rewrite, BatchPhase::Scan] {
            assert_eq!(BatchPhase::parse(p.name()), Some(p));
        }
        assert_eq!(BatchPhase::parse("explode"), None);
    }

    #[test]
    fn display_is_informative() {
        let f = BatchFailure {
            name: "r1.cfg".into(),
            phase: BatchPhase::Rewrite,
            cause: "index out of bounds".into(),
        };
        assert_eq!(f.to_string(), "r1.cfg [rewrite]: index out of bounds");
        let e = AnonError::LeakGated { files: 2, leaks: 7 };
        assert!(e.to_string().contains("quarantined"));
        let io = AnonError::Io {
            path: "x".into(),
            message: "denied".into(),
        };
        assert!(io.to_string().contains("denied"));
        let r = AnonError::ResumableInterrupted {
            path: "out/a.anon".into(),
            message: "no space left on device".into(),
        };
        assert!(r.to_string().contains("--resume"));
        assert!(r.to_string().contains("manifest intact"));
    }

    #[test]
    fn serve_error_messages_are_distinct() {
        let bind = AnonError::BindFailed {
            addr: "127.0.0.1:4040".into(),
            message: "address in use".into(),
        };
        assert!(bind.to_string().contains("bind failed"));
        assert!(bind.to_string().contains("127.0.0.1:4040"));
        let cfgerr = AnonError::ConfigInvalid {
            path: "confanon.toml".into(),
            message: "line 3: expected `key = value`".into(),
        };
        assert!(cfgerr.to_string().contains("invalid config"));
        assert!(cfgerr.to_string().contains("confanon.toml"));
        let refused = AnonError::TenantStateRefused {
            tenant: "alpha".into(),
            message: "state corrupted at alpha/state.json".into(),
        };
        assert!(refused.to_string().contains("state refused"));
        assert!(refused.to_string().contains("alpha"));
    }

    #[test]
    fn state_error_kinds_have_distinct_names() {
        let kinds = [
            StateErrorKind::VersionMismatch,
            StateErrorKind::FingerprintMismatch,
            StateErrorKind::Corrupted,
        ];
        let names: std::collections::BTreeSet<&str> =
            kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
        let e = AnonError::StateInvalid {
            path: "state/state.json".into(),
            kind: StateErrorKind::VersionMismatch,
            message: "schema \"confanon-state-v0\"".into(),
        };
        assert!(e.to_string().contains("state version mismatch"));
        assert!(e.to_string().contains("state/state.json"));
    }
}
