//! The durable run journal: `run_manifest.json`.
//!
//! A corpus run records its intent and progress in a manifest inside the
//! output directory, rewritten through [`crate::fsx::write_atomic`]
//! after every file state change. The discipline is write-ahead: a
//! file's digest enters the journal *before* its bytes are published,
//! so at no observable point does the output directory contain a file
//! the journal cannot account for — the storage-layer mirror of the
//! leak gate's "nothing unaccounted is released".
//!
//! The manifest is what makes `--resume` sound. On restart the run
//! re-reads it, verifies every file claimed `released` against its
//! SHA-1 digest, demotes anything missing or mismatched back to
//! `pending`, and re-processes only those — with the guarantee (proved
//! by `tests/crash_resume.rs` across every crash point) that the final
//! released set is byte-identical to an uninterrupted run.
//!
//! Schema `confanon-run-manifest-v1`:
//!
//! ```json
//! {
//!   "schema": "confanon-run-manifest-v1",
//!   "secret_fingerprint": "<hex sha1, domain-separated, of the owner secret>",
//!   "files": [
//!     {"name": "net1/r1.cfg", "status": "released",
//!      "digest": "<hex sha1 of the released bytes>"},
//!     {"name": "net1/r2.cfg", "status": "pending"}
//!   ]
//! }
//! ```
//!
//! `status` ∈ `pending` | `released` | `quarantined` | `failed`;
//! `digest` is present exactly for `released` and `quarantined` entries.
//! The file order is the corpus order (which also fixes the shared
//! mapping state, §3.2), and the document contains no timestamps, so a
//! resumed run's final manifest is byte-identical to a one-shot run's.

use confanon_crypto::Sha1;
use confanon_testkit::json::Json;

use crate::error::AnonError;

/// Schema tag of the manifest document.
pub const RUN_MANIFEST_SCHEMA: &str = "confanon-run-manifest-v1";

/// File name of the journal inside the output directory.
pub const RUN_MANIFEST_NAME: &str = "run_manifest.json";

/// Domain separator for the secret fingerprint, so the manifest never
/// stores a digest an attacker could replay against token hashes.
const FINGERPRINT_DOMAIN: &[u8] = b"confanon-run-manifest-v1/secret-fingerprint\x00";

/// Lifecycle of one corpus file within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileStatus {
    /// Not yet (re-)processed in this run.
    Pending,
    /// Passed the leak gate; bytes published to the output directory.
    Released,
    /// Residual identifiers found; bytes diverted to quarantine.
    Quarantined,
    /// Panic-contained; no output exists for this file.
    Failed,
}

impl FileStatus {
    /// Stable lowercase name used in the JSON document.
    pub fn name(self) -> &'static str {
        match self {
            FileStatus::Pending => "pending",
            FileStatus::Released => "released",
            FileStatus::Quarantined => "quarantined",
            FileStatus::Failed => "failed",
        }
    }

    /// Parses the name produced by [`FileStatus::name`].
    pub fn parse(name: &str) -> Option<FileStatus> {
        match name {
            "pending" => Some(FileStatus::Pending),
            "released" => Some(FileStatus::Released),
            "quarantined" => Some(FileStatus::Quarantined),
            "failed" => Some(FileStatus::Failed),
            _ => None,
        }
    }
}

/// One corpus file's journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Corpus-relative name (also the key `--resume` matches on).
    pub name: String,
    /// Current lifecycle state.
    pub status: FileStatus,
    /// Hex SHA-1 of the published bytes (released/quarantined only).
    pub digest: Option<String>,
    /// True for NetCloak-style decoy inputs (`batch --decoys N`):
    /// synthetic chaff the owner injected to dilute structural
    /// fingerprints. The flag is the owner's provenance record — the
    /// released *bytes* carry no marker — so the owner can strip or
    /// account for decoys later while a recipient of the corpus alone
    /// cannot tell them apart. Serialized only when true, so runs
    /// without decoys produce byte-identical manifests to older
    /// versions.
    pub decoy: bool,
}

/// The run journal: secret fingerprint plus per-file state, in corpus
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Fingerprint binding the journal to one owner secret.
    pub secret_fingerprint: String,
    /// Per-file entries, in corpus order.
    pub files: Vec<FileEntry>,
}

impl RunManifest {
    /// A fresh journal: every file pending, bound to `secret`.
    pub fn new(secret: &[u8], names: &[String]) -> RunManifest {
        RunManifest {
            secret_fingerprint: Self::fingerprint(secret),
            files: names
                .iter()
                .map(|n| FileEntry {
                    name: n.clone(),
                    status: FileStatus::Pending,
                    digest: None,
                    decoy: false,
                })
                .collect(),
        }
    }

    /// The domain-separated fingerprint of an owner secret. One-way:
    /// comparing fingerprints tells resume "same secret or not" without
    /// the manifest ever holding material usable against token hashes.
    pub fn fingerprint(secret: &[u8]) -> String {
        let mut h = Sha1::new();
        h.update(FINGERPRINT_DOMAIN);
        h.update(secret);
        Sha1::to_hex(&h.finalize())
    }

    /// Hex SHA-1 of published bytes — the digest stored per file.
    pub fn digest_hex(bytes: &[u8]) -> String {
        Sha1::to_hex(&Sha1::digest(bytes))
    }

    /// Looks up a file's entry by name.
    pub fn entry(&self, name: &str) -> Option<&FileEntry> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Updates one file's state; returns false if the name is unknown
    /// (callers treat that as a corpus/manifest mismatch).
    pub fn set(&mut self, name: &str, status: FileStatus, digest: Option<String>) -> bool {
        match self.files.iter_mut().find(|f| f.name == name) {
            Some(e) => {
                e.status = status;
                e.digest = digest;
                true
            }
            None => false,
        }
    }

    /// Flags every entry named in `names` as a decoy. Returns false if
    /// any name is unknown (a corpus/manifest mismatch — callers treat
    /// it like [`RunManifest::set`] failing).
    pub fn mark_decoys(&mut self, names: &std::collections::BTreeSet<String>) -> bool {
        let mut remaining = names.len();
        for f in &mut self.files {
            if names.contains(&f.name) {
                f.decoy = true;
                remaining -= 1;
            }
        }
        remaining == 0
    }

    /// Names of the entries flagged as decoys, in corpus order.
    pub fn decoy_names(&self) -> Vec<String> {
        self.files
            .iter()
            .filter(|f| f.decoy)
            .map(|f| f.name.clone())
            .collect()
    }

    /// Number of entries still pending.
    pub fn pending_count(&self) -> usize {
        self.files
            .iter()
            .filter(|f| f.status == FileStatus::Pending)
            .count()
    }

    /// The manifest as a JSON document.
    pub fn to_json(&self) -> Json {
        let files: Vec<Json> = self
            .files
            .iter()
            .map(|f| {
                let mut o = Json::obj()
                    .with("name", f.name.as_str())
                    .with("status", f.status.name());
                if let Some(d) = &f.digest {
                    o.set("digest", d.as_str());
                }
                if f.decoy {
                    o.set("decoy", true);
                }
                o
            })
            .collect();
        Json::obj()
            .with("schema", RUN_MANIFEST_SCHEMA)
            .with("secret_fingerprint", self.secret_fingerprint.as_str())
            .with("files", Json::Arr(files))
    }

    /// The exact bytes written to disk (pretty JSON plus newline).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s.into_bytes()
    }

    /// Parses a manifest document, validating the schema tag and every
    /// entry's status. Structural problems are [`AnonError::InvalidInput`]
    /// — a torn or foreign file must never silently resume as an empty
    /// run.
    pub fn from_json_str(text: &str) -> Result<RunManifest, AnonError> {
        let invalid = |message: String| AnonError::InvalidInput { message };
        let doc = Json::parse(text)
            .map_err(|e| invalid(format!("{RUN_MANIFEST_NAME}: not valid JSON: {e}")))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != RUN_MANIFEST_SCHEMA {
            return Err(invalid(format!(
                "{RUN_MANIFEST_NAME}: schema {schema:?}, expected {RUN_MANIFEST_SCHEMA:?}"
            )));
        }
        let secret_fingerprint = doc
            .get("secret_fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid(format!("{RUN_MANIFEST_NAME}: missing secret_fingerprint")))?
            .to_string();
        let files_json = doc
            .get("files")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid(format!("{RUN_MANIFEST_NAME}: missing files array")))?;
        let mut files = Vec::with_capacity(files_json.len());
        for f in files_json {
            let name = f
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| invalid(format!("{RUN_MANIFEST_NAME}: file entry without name")))?
                .to_string();
            let status_name = f.get("status").and_then(Json::as_str).unwrap_or("");
            let status = FileStatus::parse(status_name).ok_or_else(|| {
                invalid(format!(
                    "{RUN_MANIFEST_NAME}: {name}: unknown status {status_name:?}"
                ))
            })?;
            let digest = f.get("digest").and_then(Json::as_str).map(str::to_string);
            let decoy = f.get("decoy").and_then(Json::as_bool).unwrap_or(false);
            files.push(FileEntry {
                name,
                status,
                digest,
                decoy,
            });
        }
        Ok(RunManifest {
            secret_fingerprint,
            files,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn statuses_round_trip() {
        for s in [
            FileStatus::Pending,
            FileStatus::Released,
            FileStatus::Quarantined,
            FileStatus::Failed,
        ] {
            assert_eq!(FileStatus::parse(s.name()), Some(s));
        }
        assert_eq!(FileStatus::parse("torn"), None);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let mut m = RunManifest::new(b"secret", &names(&["a.cfg", "sub/b.cfg", "c.cfg"]));
        assert_eq!(m.pending_count(), 3);
        assert!(m.set(
            "a.cfg",
            FileStatus::Released,
            Some(RunManifest::digest_hex(b"bytes"))
        ));
        assert!(m.set("sub/b.cfg", FileStatus::Quarantined, Some("ab".into())));
        assert!(m.set("c.cfg", FileStatus::Failed, None));
        assert!(!m.set("nope.cfg", FileStatus::Released, None));
        assert_eq!(m.pending_count(), 0);

        let text = String::from_utf8(m.to_bytes()).expect("utf8");
        let back = RunManifest::from_json_str(&text).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn decoy_flags_round_trip_and_stay_off_the_wire_when_absent() {
        let mut m = RunManifest::new(b"secret", &names(&["a.cfg", "net/zz-decoy-0.cfg"]));
        let marked: std::collections::BTreeSet<String> =
            ["net/zz-decoy-0.cfg".to_string()].into();
        assert!(m.mark_decoys(&marked));
        assert_eq!(m.decoy_names(), vec!["net/zz-decoy-0.cfg".to_string()]);

        let text = String::from_utf8(m.to_bytes()).expect("utf8");
        assert!(text.contains("\"decoy\""), "flag serialized when set");
        let back = RunManifest::from_json_str(&text).expect("parse");
        assert_eq!(back, m);

        // Status updates preserve the provenance flag.
        assert!(m.set("net/zz-decoy-0.cfg", FileStatus::Released, Some("ab".into())));
        assert_eq!(m.decoy_names().len(), 1);

        // Unknown names fail, mirroring `set`.
        let unknown: std::collections::BTreeSet<String> = ["nope.cfg".to_string()].into();
        assert!(!m.mark_decoys(&unknown));
    }

    #[test]
    fn decoy_free_manifests_keep_the_v1_wire_format() {
        let m = RunManifest::new(b"s", &names(&["a", "b"]));
        let text = String::from_utf8(m.to_bytes()).expect("utf8");
        assert!(
            !text.contains("decoy"),
            "no-decoy runs must serialize byte-identically to older versions"
        );
        let back = RunManifest::from_json_str(&text).expect("parse");
        assert!(back.decoy_names().is_empty());
    }

    #[test]
    fn fingerprint_separates_secrets_and_is_stable() {
        let a = RunManifest::fingerprint(b"secret-a");
        assert_eq!(a, RunManifest::fingerprint(b"secret-a"));
        assert_ne!(a, RunManifest::fingerprint(b"secret-b"));
        // Domain separation: the fingerprint is not the bare digest.
        assert_ne!(a, Sha1::to_hex(&Sha1::digest(b"secret-a")));
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn digest_matches_plain_sha1() {
        assert_eq!(
            RunManifest::digest_hex(b"abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d",
            "RFC 3174 vector"
        );
    }

    #[test]
    fn parse_rejects_foreign_and_torn_documents() {
        assert!(RunManifest::from_json_str("{").is_err(), "torn JSON");
        assert!(
            RunManifest::from_json_str(r#"{"schema": "other", "secret_fingerprint": "x", "files": []}"#)
                .is_err(),
            "wrong schema"
        );
        assert!(
            RunManifest::from_json_str(
                r#"{"schema": "confanon-run-manifest-v1", "secret_fingerprint": "x",
                    "files": [{"name": "a", "status": "exploded"}]}"#
            )
            .is_err(),
            "unknown status"
        );
        assert!(
            RunManifest::from_json_str(
                r#"{"schema": "confanon-run-manifest-v1", "files": []}"#
            )
            .is_err(),
            "missing fingerprint"
        );
    }

    #[test]
    fn no_timestamps_means_deterministic_bytes() {
        let m1 = RunManifest::new(b"s", &names(&["a", "b"]));
        let m2 = RunManifest::new(b"s", &names(&["a", "b"]));
        assert_eq!(m1.to_bytes(), m2.to_bytes());
    }
}
