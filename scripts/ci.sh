#!/bin/sh
# Hermetic CI: build, test, lint, and smoke-bench with no network and an
# empty registry. Everything here must pass from a cold checkout.
set -eu

cd "$(dirname "$0")/.."

echo "==> build (release, offline)"
cargo build --workspace --release --offline

echo "==> test (offline)"
cargo test -q --workspace --offline

echo "==> clippy (offline, deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> doc build (offline, broken intra-doc links denied)"
# Every crate root carries #![deny(rustdoc::broken_intra_doc_links)], so
# a dangling [`link`] anywhere fails this step.
cargo doc --workspace --no-deps --offline

echo "==> smoke bench: batch pipeline throughput"
# The ISSUE's smoke bench target is a corpus directory; `examples/` holds
# Rust examples, so generate a small synthetic corpus and batch it.
# The bench runs at --jobs 1: CI boxes here are single-core, where
# worker threads only add spawn/merge overhead to the headline number.
# Parallel correctness (byte-identity across --jobs) is asserted by the
# observability/chaos/crash smokes below and by the test suite.
corpus_dir="$(mktemp -d)"
trap 'rm -rf "$corpus_dir"' EXIT
./target/release/confanon generate --networks 2 --routers 4 --seed 2004 \
    --out-dir "$corpus_dir"
./target/release/confanon batch "$corpus_dir" --jobs 1 \
    --bench-json BENCH_pipeline.json \
    --bench-durability BENCH_durability.json

echo "==> BENCH_pipeline.json"
cat BENCH_pipeline.json
echo

echo "==> throughput bar: >= 3x the pre-zero-copy baseline"
# The pre-rewrite pipeline measured 171,811 tokens/sec on this corpus
# (BENCH_pipeline.json before the zero-copy PR). The borrow-or-own
# rewrite, byte-class dispatch, SHA-1/HMAC midstate work, and leak-scan
# index hold the min-of-5 headline at >= 3x that baseline. Measured
# min-of-5 samples on this box land at 550k-750k tokens/sec; the bar
# leaves the rest as noise headroom. See PERFORMANCE.md for the ledger.
tps=$(sed -n 's/.*"tokens_per_sec": \([0-9.]*\).*/\1/p' BENCH_pipeline.json | head -n 1)
awk -v t="$tps" 'BEGIN { exit !(t >= 515433) }' || {
    echo "throughput $tps tokens/sec below the 3x bar (515433)"; exit 1;
}

echo "==> rewrite bench block: equivalence invariants + speedup"
# The zero-copy emit path must produce byte-identical outputs and
# identical per-rule fire counts versus the retained legacy clone-always
# path — asserted on the bench corpus itself, so an equivalence
# regression fails CI even if no unit test covers the exact corpus.
grep -q '"rewrite"' BENCH_pipeline.json || { echo "missing rewrite block"; exit 1; }
grep -q '"outputs_identical": true' BENCH_pipeline.json || {
    echo "zero-copy rewrite changed output bytes vs the legacy path"; exit 1;
}
rewrite_fires=$(sed -n '/"rewrite"/,$p' BENCH_pipeline.json | \
    sed -n 's/.*"rule_fires_identical": \([a-z]*\).*/\1/p' | head -n 1)
[ "$rewrite_fires" = "true" ] || {
    echo "zero-copy rewrite changed per-rule fire counts"; exit 1;
}
grep -q '"lines_borrowed"' BENCH_pipeline.json || {
    echo "missing borrow-or-own accounting"; exit 1;
}

echo "==> observability guard: instrumentation cost within noise"
# tests/metrics_invariants.rs holds the instrumented-vs-stripped ratio
# under 1.05 with retries; the single-attempt BENCH block gets noise
# headroom on a shared box (measured samples: 0.85-1.11). This bar
# catches gross regressions — someone making recording expensive again.
ratio=$(sed -n 's/.*"overhead_ratio": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
awk -v r="$ratio" 'BEGIN { exit !(r <= 1.25) }' || {
    echo "observability overhead ratio $ratio exceeds the 1.25 CI guard"; exit 1;
}

echo "==> discovery bench block: present, fire-count invariant, speedup"
# The sharded-discovery bench must have run and recorded its block, the
# prefilter must not change a single per-rule fire count, and sharded
# discovery must beat the sequential baseline. The 1.5x bar needs real
# cores for the scan to fan out over; on a single-core runner only the
# deferred per-identifier trie/record work can win, and the zero-copy
# PR made that deferred keyed-hash work ~4x cheaper — the single-core
# advantage shrank to ~1.1-1.5x with noise dips near parity, so the bar
# there is no-regression-within-noise (>= 0.9). See PERFORMANCE.md.
grep -q '"discovery"'     BENCH_pipeline.json || { echo "missing discovery block"; exit 1; }
grep -q '"sharded_ns"'    BENCH_pipeline.json || { echo "missing sharded_ns"; exit 1; }
grep -q '"rule_fires_identical": true' BENCH_pipeline.json || {
    echo "prefilter changed per-rule fire counts"; exit 1;
}
speedup=$(sed -n 's/.*"sharded_speedup": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
cores=$(sed -n 's/.*"parallelism": \([0-9]*\).*/\1/p' BENCH_pipeline.json)
bar=0.9; [ "${cores:-1}" -ge 2 ] && bar=1.5
awk -v s="$speedup" -v b="$bar" 'BEGIN { exit !(s >= b) }' || {
    echo "sharded discovery speedup $speedup below the $bar bar (cores=$cores)"; exit 1;
}

echo "==> BENCH_durability.json"
cat BENCH_durability.json
echo

echo "==> observability smoke: metrics + trace, deterministic across jobs"
# Run the batch twice at different worker counts with --metrics/--trace,
# shape-check both artifacts through the in-tree JSON parser (the
# `confanon metrics` subcommand), and demand the deterministic section
# be byte-identical across the two job counts.
obs_dir="$(mktemp -d)"
trap 'rm -rf "$corpus_dir" "$obs_dir"' EXIT
./target/release/confanon batch "$corpus_dir" --jobs 1 \
    --out-dir "$obs_dir/out1" \
    --metrics "$obs_dir/metrics-j1.json" --trace "$obs_dir/run-j1.trace.json"
./target/release/confanon batch "$corpus_dir" --jobs 4 \
    --out-dir "$obs_dir/out4" \
    --metrics "$obs_dir/metrics-j4.json" --trace "$obs_dir/run-j4.trace.json"
./target/release/confanon metrics "$obs_dir/metrics-j1.json"
./target/release/confanon metrics "$obs_dir/metrics-j4.json"
./target/release/confanon metrics --trace "$obs_dir/run-j1.trace.json"
./target/release/confanon metrics --trace "$obs_dir/run-j4.trace.json"
./target/release/confanon metrics --deterministic "$obs_dir/metrics-j1.json" \
    > "$obs_dir/det-j1.json"
./target/release/confanon metrics --deterministic "$obs_dir/metrics-j4.json" \
    > "$obs_dir/det-j4.json"
diff "$obs_dir/det-j1.json" "$obs_dir/det-j4.json" || {
    echo "deterministic metrics section differs between --jobs 1 and --jobs 4"; exit 1;
}

echo "==> chaos smoke: fail-closed exit-code taxonomy"
# Fixed seeds end to end (TESTKIT_SEED for any in-process property
# replay, --seed for the mutator) so the hostile corpus — and therefore
# the outcome asserted below — is reproducible run to run.
export TESTKIT_SEED=2004
chaos_dir="$(mktemp -d)"
trap 'rm -rf "$corpus_dir" "$obs_dir" "$chaos_dir"' EXIT

# 1. A clean synthetic corpus releases everything: exit 0.
set +e
./target/release/confanon batch "$corpus_dir" --jobs 4 \
    --out-dir "$chaos_dir/clean-out" --quarantine-dir "$chaos_dir/clean-q"
code=$?
set -e
[ "$code" -eq 0 ] || { echo "clean corpus: expected exit 0, got $code"; exit 1; }

# 2. A planted leak (the §6.1 ablation: disable the remote-as locator
#    rule so a recorded ASN survives emission) trips the gate: exit 4,
#    withheld bytes and a machine-readable report in the quarantine dir.
mkdir -p "$chaos_dir/leak-in"
printf 'router bgp 701\n neighbor 10.0.0.2 remote-as 701\n' \
    > "$chaos_dir/leak-in/a.cfg"
printf 'router bgp 65001\n neighbor 10.0.0.1 remote-as 701\n' \
    > "$chaos_dir/leak-in/b.cfg"
set +e
./target/release/confanon batch "$chaos_dir/leak-in" --jobs 2 \
    --disable-rule neighbor-remote-as \
    --out-dir "$chaos_dir/leak-out" --quarantine-dir "$chaos_dir/leak-q"
code=$?
set -e
[ "$code" -eq 4 ] || { echo "planted leak: expected exit 4, got $code"; exit 1; }
[ -f "$chaos_dir/leak-q/leak_report.json" ] || {
    echo "planted leak: missing leak_report.json"; exit 1;
}

# 3. 64 chaos-mutated hostile configs never crash the pipeline or escape
#    the taxonomy (exit 0/3/4), and the run is deterministic: jobs=1 and
#    jobs=4 agree on the exit code and on every released byte.
./target/release/confanon chaos --seed 2004 --count 64 \
    --out-dir "$chaos_dir/hostile"
set +e
./target/release/confanon batch "$chaos_dir/hostile" --jobs 4 \
    --out-dir "$chaos_dir/hostile-out4" --quarantine-dir "$chaos_dir/hostile-q4"
code4=$?
./target/release/confanon batch "$chaos_dir/hostile" --jobs 1 \
    --out-dir "$chaos_dir/hostile-out1" --quarantine-dir "$chaos_dir/hostile-q1"
code1=$?
set -e
case "$code4" in
    0|3|4) ;;
    *) echo "hostile corpus: exit $code4 outside the 0/3/4 taxonomy"; exit 1 ;;
esac
[ "$code4" -eq "$code1" ] || {
    echo "hostile corpus: jobs=4 exit $code4 != jobs=1 exit $code1"; exit 1;
}
diff -r "$chaos_dir/hostile-out4" "$chaos_dir/hostile-out1"
diff -r "$chaos_dir/hostile-q4" "$chaos_dir/hostile-q1"

echo "==> crash/resume smoke: durable journal + --resume"
# Kill the run after its 3rd durable write (SIGABRT, a real crash, not
# an unwind), check the journal survived intact, resume at a different
# worker count, and demand byte-identity with clean one-shot runs at
# --jobs 1 and --jobs 4. The manifest records neither timestamps nor
# the job count, so even run_manifest.json must diff clean.
crash_dir="$(mktemp -d)"
trap 'rm -rf "$corpus_dir" "$obs_dir" "$chaos_dir" "$crash_dir"' EXIT

./target/release/confanon batch "$corpus_dir" --jobs 1 \
    --out-dir "$crash_dir/golden1"
./target/release/confanon batch "$corpus_dir" --jobs 4 \
    --out-dir "$crash_dir/golden4"
diff -r "$crash_dir/golden1" "$crash_dir/golden4"

set +e
CONFANON_CRASH_AFTER=3 ./target/release/confanon batch "$corpus_dir" \
    --jobs 1 --out-dir "$crash_dir/out"
code=$?
set -e
[ "$code" -ne 0 ] || { echo "crash run: expected a non-zero exit"; exit 1; }
grep -q '"confanon-run-manifest-v1"' "$crash_dir/out/run_manifest.json" || {
    echo "crash run: journal missing or torn after the crash"; exit 1;
}
ls "$crash_dir/out" | grep -q '\.fsx-tmp' && {
    echo "crash run: stray temp file escaped into --out-dir"; exit 1;
}

./target/release/confanon batch "$corpus_dir" --jobs 4 --resume \
    --out-dir "$crash_dir/out"
diff -r "$crash_dir/out" "$crash_dir/golden1"
diff -r "$crash_dir/out" "$crash_dir/golden4"

echo "==> incremental smoke: --state warm runs match from-scratch runs"
# Cold run over the corpus with --state, append three generated configs
# (a second generator network — its files sort after the originals, the
# append-growth precondition), then warm-rerun and demand byte-identity
# with from-scratch runs over the grown corpus at --jobs 1 and 4. The
# metrics `state` block must account for every skipped file.
incr_dir="$(mktemp -d)"
trap 'rm -rf "$corpus_dir" "$obs_dir" "$chaos_dir" "$crash_dir" "$incr_dir"' EXIT

cp -r "$corpus_dir" "$incr_dir/grown"
./target/release/confanon generate --networks 2 --routers 3 --seed 7791 \
    --out-dir "$incr_dir/extra"
# Take 3 files from the later-sorting generated network, renamed into a
# directory that sorts after everything already in the corpus.
mkdir -p "$incr_dir/grown/zz-added"
extra_net=$(ls "$incr_dir/extra" | sort | tail -n 1)
ls "$incr_dir/extra/$extra_net" | sort | head -n 3 | while read -r f; do
    cp "$incr_dir/extra/$extra_net/$f" "$incr_dir/grown/zz-added/$f"
done
[ "$(ls "$incr_dir/grown/zz-added" | wc -l)" -eq 3 ] || {
    echo "incremental smoke: expected 3 appended configs"; exit 1;
}
small_n=$(find "$corpus_dir" -name '*.cfg' | wc -l)

./target/release/confanon batch "$corpus_dir" --jobs 4 \
    --out-dir "$incr_dir/out" --state "$incr_dir/st"
for jobs in 1 4; do
    rm -rf "$incr_dir/out-warm" "$incr_dir/st-warm"
    cp -r "$incr_dir/out" "$incr_dir/out-warm"
    cp -r "$incr_dir/st" "$incr_dir/st-warm"
    ./target/release/confanon batch "$incr_dir/grown" --jobs "$jobs" \
        --out-dir "$incr_dir/out-warm" --state "$incr_dir/st-warm" \
        --metrics "$incr_dir/metrics-warm.json"
    ./target/release/confanon batch "$incr_dir/grown" --jobs "$jobs" \
        --out-dir "$incr_dir/out-scratch-$jobs" --state "$incr_dir/st-scratch-$jobs"
    diff -r "$incr_dir/out-warm" "$incr_dir/out-scratch-$jobs" || {
        echo "incremental smoke: warm run differs from scratch at --jobs $jobs"; exit 1;
    }
    grep -q "\"files_skipped\": $small_n" "$incr_dir/metrics-warm.json" || {
        echo "incremental smoke: warm run did not skip all $small_n unchanged files"; exit 1;
    }
done

echo "==> serve smoke: 2-tenant daemon, drain on SIGTERM, warm restart"
# Start the daemon with two tenants, push a config through each via the
# `confanon client` test client (an independent wire implementation, so
# this doubles as a protocol interop check), validate the stats frame,
# SIGTERM-drain (must exit 0), then restart and demand warm mappings:
# the same inputs must anonymize byte-identically across the restart.
serve_dir="$(mktemp -d)"
serve_pid=""
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$corpus_dir" "$obs_dir" "$chaos_dir" "$crash_dir" "$incr_dir" "$serve_dir"' EXIT

cat > "$serve_dir/confanon.toml" <<SERVECFG
[tenant.alpha]
secret = "alpha-ci-secret"
state_dir = "$serve_dir/state-alpha"

[tenant.beta]
secret = "beta-ci-secret"
state_dir = "$serve_dir/state-beta"
SERVECFG

a_cfg=$(find "$corpus_dir" -name '*.cfg' | sort | head -n 1)
b_cfg=$(find "$corpus_dir" -name '*.cfg' | sort | tail -n 1)

start_serve() {
    : > "$serve_dir/port"
    ./target/release/confanon serve --config "$serve_dir/confanon.toml" \
        --listen 127.0.0.1:0 --port-file "$serve_dir/port" &
    serve_pid=$!
    for _ in $(seq 1 200); do
        [ -s "$serve_dir/port" ] && return 0
        sleep 0.05
    done
    echo "serve smoke: daemon never advertised its port"; exit 1
}

start_serve
endpoint=$(cat "$serve_dir/port")
client="./target/release/confanon client --endpoint $endpoint"

$client ping > /dev/null
$client anon --tenant alpha --name a.cfg "$a_cfg" > "$serve_dir/a-cold.anon"
$client anon --tenant beta  --name b.cfg "$b_cfg" > "$serve_dir/b-cold.anon"
[ -s "$serve_dir/a-cold.anon" ] || { echo "serve smoke: empty alpha output"; exit 1; }
$client stats > "$serve_dir/stats.json"
./target/release/confanon metrics --serve "$serve_dir/stats.json"

kill -TERM "$serve_pid"
set +e
wait "$serve_pid"
rc=$?
set -e
[ "$rc" -eq 0 ] || { echo "serve smoke: SIGTERM drain exited $rc, want 0"; exit 1; }
for t in state-alpha state-beta; do
    [ -f "$serve_dir/$t/state.json" ] || {
        echo "serve smoke: drain did not flush $t/state.json"; exit 1;
    }
done

start_serve
endpoint=$(cat "$serve_dir/port")
client="./target/release/confanon client --endpoint $endpoint"
$client anon --tenant alpha --name a.cfg "$a_cfg" > "$serve_dir/a-warm.anon"
$client anon --tenant beta  --name b.cfg "$b_cfg" > "$serve_dir/b-warm.anon"
cmp "$serve_dir/a-cold.anon" "$serve_dir/a-warm.anon" || {
    echo "serve smoke: alpha mappings not warm across restart"; exit 1;
}
cmp "$serve_dir/b-cold.anon" "$serve_dir/b-warm.anon" || {
    echo "serve smoke: beta mappings not warm across restart"; exit 1;
}
$client shutdown > /dev/null
set +e
wait "$serve_pid"
rc=$?
set -e
serve_pid=""
[ "$rc" -eq 0 ] || { echo "serve smoke: shutdown-frame drain exited $rc, want 0"; exit 1; }

echo "==> serve-chaos smoke: hostile wire via the netchaos proxy"
# Put the seeded fault-injecting proxy (torn frames, dribbles, garbage,
# mid-frame disconnects — all a pure function of --seed) in front of a
# live daemon, hammer it with a client whose failures are expected, and
# demand that (a) a healthy client connecting directly still gets real
# output, (b) the stats frame validates and carries the full
# daemon.faults counter taxonomy, and (c) both the proxy and the daemon
# drain cleanly on SIGTERM.
wire_dir="$(mktemp -d)"
proxy_pid=""
trap 'kill "$serve_pid" "$proxy_pid" 2>/dev/null || true; rm -rf "$corpus_dir" "$obs_dir" "$chaos_dir" "$crash_dir" "$incr_dir" "$serve_dir" "$wire_dir"' EXIT

cat > "$wire_dir/confanon.toml" <<WIRECFG
idle_timeout_ms = 2000
read_deadline_ms = 800

[tenant.alpha]
secret = "alpha-wire-secret"
state_dir = "$wire_dir/state-alpha"
max_request_bytes = 1048576

[tenant.mallory]
secret = "mallory-wire-secret"
state_dir = "$wire_dir/state-mallory"
WIRECFG

: > "$wire_dir/port"
./target/release/confanon serve --config "$wire_dir/confanon.toml" \
    --listen 127.0.0.1:0 --port-file "$wire_dir/port" &
serve_pid=$!
for _ in $(seq 1 200); do
    [ -s "$wire_dir/port" ] && break
    sleep 0.05
done
[ -s "$wire_dir/port" ] || { echo "serve-chaos smoke: daemon never advertised"; exit 1; }
endpoint=$(cat "$wire_dir/port")

: > "$wire_dir/proxyport"
./target/release/confanon netchaos --upstream "$endpoint" --seed 2004 \
    --profile hostile --port-file "$wire_dir/proxyport" &
proxy_pid=$!
for _ in $(seq 1 200); do
    [ -s "$wire_dir/proxyport" ] && break
    sleep 0.05
done
[ -s "$wire_dir/proxyport" ] || { echo "serve-chaos smoke: proxy never advertised"; exit 1; }
proxy=$(cat "$wire_dir/proxyport")

# The hostile leg: valid requests launched into the mutating proxy.
# Any exit code is acceptable — the proxy tears what it relays — but
# the daemon behind it must not care.
for i in 1 2 3 4 5 6; do
    printf 'hostname storm%s\nrouter bgp 65%03d\n' "$i" "$i" | \
        ./target/release/confanon client --endpoint "$proxy" \
            anon --tenant mallory --name "s$i.cfg" --retries 2 \
        > /dev/null 2>&1 || true
done

# The healthy leg, direct: must produce non-empty anonymized output.
./target/release/confanon client --endpoint "$endpoint" \
    anon --tenant alpha --name a.cfg "$a_cfg" > "$wire_dir/a.anon"
[ -s "$wire_dir/a.anon" ] || { echo "serve-chaos smoke: empty healthy output"; exit 1; }

# The stats frame still validates and carries every fault counter.
./target/release/confanon client --endpoint "$endpoint" stats \
    > "$wire_dir/stats.json"
./target/release/confanon metrics --serve "$wire_dir/stats.json"
for counter in frames_rejected read_timeouts idle_closed connections_shed \
               recoveries degraded_transitions; do
    grep -q "\"$counter\"" "$wire_dir/stats.json" || {
        echo "serve-chaos smoke: stats frame lacks faults.$counter"; exit 1;
    }
done

kill -TERM "$proxy_pid"
set +e
wait "$proxy_pid"
rc=$?
set -e
proxy_pid=""
[ "$rc" -eq 0 ] || { echo "serve-chaos smoke: proxy SIGTERM exited $rc, want 0"; exit 1; }

kill -TERM "$serve_pid"
set +e
wait "$serve_pid"
rc=$?
set -e
serve_pid=""
[ "$rc" -eq 0 ] || { echo "serve-chaos smoke: daemon drain exited $rc, want 0"; exit 1; }

echo "==> audit smoke: seeded risk-utility report over the seed corpus"
# Run the red team against the observability smoke's released corpus
# ($obs_dir/out1 — a complete journaled batch output), validate the
# report through the CLI checker, demand the greppable tradeoff table
# (baseline + both default rule ablations + the decoy row), prove the
# report byte-identical across --jobs, and hold the paper's core claim:
# the keyed ASN permutation gives the known-plaintext attacker nothing.
audit_dir="$(mktemp -d)"
trap 'kill "$serve_pid" "$proxy_pid" 2>/dev/null || true; rm -rf "$corpus_dir" "$obs_dir" "$chaos_dir" "$crash_dir" "$incr_dir" "$serve_dir" "$wire_dir" "$audit_dir"' EXIT

./target/release/confanon audit --risk --secret smoke-bench-secret \
    --decoys 2 --jobs 1 \
    --pre-dir "$corpus_dir" --post-dir "$obs_dir/out1" \
    --report "$audit_dir/risk-j1.json" > "$audit_dir/tradeoff.txt"
./target/release/confanon audit --check-report "$audit_dir/risk-j1.json"

for row in "tradeoff baseline " "tradeoff disable:router-bgp-asn " \
           "tradeoff disable:neighbor-remote-as " "tradeoff scramble " \
           "tradeoff decoys:2 "; do
    grep -q "^$row" "$audit_dir/tradeoff.txt" || {
        echo "audit smoke: missing table row '$row'"; cat "$audit_dir/tradeoff.txt"; exit 1;
    }
done

./target/release/confanon audit --risk --secret smoke-bench-secret \
    --decoys 2 --jobs 4 \
    --pre-dir "$corpus_dir" --post-dir "$obs_dir/out1" \
    --report "$audit_dir/risk-j4.json" > /dev/null
cmp "$audit_dir/risk-j1.json" "$audit_dir/risk-j4.json" || {
    echo "audit smoke: risk report differs between --jobs 1 and --jobs 4"; exit 1;
}

# The baseline known-plaintext ASN attack must recover nothing: the
# asn_known_plaintext block is the first "successes" after the degree
# block, so pull it structurally rather than by line position.
asn_successes=$(sed -n '/"asn_known_plaintext"/,/}/s/.*"successes": \([0-9]*\).*/\1/p' \
    "$audit_dir/risk-j1.json")
[ "$asn_successes" = "0" ] || {
    echo "audit smoke: known-plaintext ASN attack recovered $asn_successes ASN(s), want 0"
    exit 1
}

echo "==> audit tradeoff table"
cat "$audit_dir/tradeoff.txt"

echo "CI OK"
