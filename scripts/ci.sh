#!/bin/sh
# Hermetic CI: build, test, lint, and smoke-bench with no network and an
# empty registry. Everything here must pass from a cold checkout.
set -eu

cd "$(dirname "$0")/.."

echo "==> build (release, offline)"
cargo build --workspace --release --offline

echo "==> test (offline)"
cargo test -q --workspace --offline

echo "==> clippy (offline, deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> smoke bench: batch pipeline throughput"
# The ISSUE's smoke bench target is a corpus directory; `examples/` holds
# Rust examples, so generate a small synthetic corpus and batch it.
corpus_dir="$(mktemp -d)"
trap 'rm -rf "$corpus_dir"' EXIT
./target/release/confanon generate --networks 2 --routers 4 --seed 2004 \
    --out-dir "$corpus_dir"
./target/release/confanon batch "$corpus_dir" --jobs 4 \
    --bench-json BENCH_pipeline.json

echo "==> BENCH_pipeline.json"
cat BENCH_pipeline.json
echo
echo "CI OK"
