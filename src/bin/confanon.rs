//! `confanon` — the command-line anonymizer.
//!
//! The workflow the paper's §7 clearinghouse envisions: a network owner
//! downloads the tool, anonymizes their configs locally under a secret
//! only they hold, audits the output, and uploads the result.
//!
//! ```text
//! confanon anonymize --secret <secret> [--compact] [--audit FILE] [--out-dir DIR] FILE...
//! confanon batch     [--jobs N] [--secret S] [--out-dir DIR] [--quarantine-dir DIR]
//!                    [--disable-rule NAMES] [--metrics FILE] [--trace FILE]
//!                    [--bench-json FILE] [--bench-durability FILE] [--resume]
//!                    [--decoys N] DIR
//! confanon chaos     [--seed S] [--count N] --out-dir DIR
//! confanon generate  [--networks N] [--routers M] [--seed S] --out-dir DIR
//! confanon validate  --pre-dir DIR --post-dir DIR
//! confanon scan      --record FILE.json FILE...
//! confanon metrics   [--deterministic] [--trace FILE] [FILE]
//! confanon audit     --risk --pre-dir DIR --post-dir DIR --secret <secret> [...]
//! confanon rules
//! ```
//!
//! ## Observability
//!
//! `batch --metrics FILE` writes a `confanon-metrics-v1` document with
//! two sections: `deterministic` (corpus accounting, aggregate
//! anonymization counters, per-rule fire counts, trie node counts,
//! input-shape histograms — byte-identical for a given corpus across
//! any `--jobs` value and across resumed vs. one-shot runs) and
//! `timing` (span aggregates, rewrite/gate/publish counters,
//! durability, wall-clock — excluded from that guarantee).
//! `batch --trace FILE` writes the same run's spans as Chrome
//! trace-event JSON (load in `chrome://tracing` or Perfetto).
//! `confanon metrics` validates such files and extracts the
//! deterministic section for diffing.
//!
//! ## Exit codes
//!
//! `batch` distinguishes its failure classes so automation can branch
//! without parsing stderr: `0` success (all outputs released), `1` I/O
//! failure, `2` usage error, `3` panic-contained file(s) (outputs
//! withheld, rest released), `4` leak-gated file(s) quarantined (takes
//! precedence over `3`), `5` run interrupted with the journal intact —
//! re-run with `--resume` to continue instead of starting over.
//!
//! ## Durability
//!
//! With `--out-dir`, every byte `batch` publishes goes through an
//! atomic durable write (staged temp file → fsync → rename → directory
//! fsync) and a write-ahead journal `run_manifest.json` in the output
//! directory: a file's digest is journaled *before* its bytes appear,
//! so a crash at any point leaves no torn or unaccounted-for output.
//! `CONFANON_CRASH_AFTER=N` aborts the process after the N-th durable
//! write (deterministic at any `--jobs`), which is how the crash/resume
//! property suite enumerates every crash point.

#![deny(rustdoc::broken_intra_doc_links)]

// Fail-closed at the CLI boundary too: no abort on input-derived data.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::core::{
    sanitize_bytes, write_atomic, AnonError, AnonState, AnonymizedConfig, Anonymizer,
    AnonymizerConfig, DurabilityStats, FileDiscovery, Publisher, RunManifest, StdFs, ALL_RULES,
    RUN_MANIFEST_NAME,
};
use confanon::core::state::{state_path, FileMark};
use confanon::iosparse::Config;
use confanon::obs::{
    chrome_trace_json, is_observability_artifact, metrics_doc, validate_metrics, validate_trace,
    Clock, ObsShard,
};
use confanon::validate::{compare_designs, compare_properties, network_properties};
use confanon_testkit::json::Json;

/// Everything released, nothing withheld.
const EXIT_OK: u8 = 0;
/// Reading an input or writing an output failed.
const EXIT_IO: u8 = 1;
/// Bad command line.
const EXIT_USAGE: u8 = 2;
/// One or more files panicked inside containment; their outputs were
/// withheld while the rest of the corpus was released.
const EXIT_PANIC_CONTAINED: u8 = 3;
/// The §6.1 gate quarantined one or more outputs with residual
/// identifiers. Takes precedence over [`EXIT_PANIC_CONTAINED`].
const EXIT_LEAK_GATED: u8 = 4;
/// A durable write failed after the run journal was safely on disk:
/// nothing published is torn and `--resume` can continue the run.
const EXIT_RESUMABLE: u8 = 5;
/// `confanon serve` could not bind its listen endpoint. Nothing was
/// served; no tenant state was touched.
const EXIT_BIND: u8 = 6;
/// `confanon.toml` (or the serve CLI override set) failed validation.
const EXIT_CONFIG: u8 = 7;
/// `--require-clean-state`: a tenant's persisted state was present but
/// unusable, and the operator asked for refusal instead of quarantine.
const EXIT_TENANT_STATE: u8 = 8;

/// Upper bound on `--jobs`. The pipeline clamps the worker count to the
/// corpus size anyway; a value beyond any plausible machine is a typo
/// (`--jobs 44` fat-fingered as `--jobs 444444`) and is rejected as a
/// usage error rather than silently spawning a thread army.
const MAX_JOBS: usize = 512;

/// Maps a pipeline error to the exit-code taxonomy above.
fn exit_for(e: &AnonError) -> u8 {
    match e {
        AnonError::Io { .. } => EXIT_IO,
        AnonError::InvalidInput { .. } => EXIT_USAGE,
        AnonError::PanicContained { .. } => EXIT_PANIC_CONTAINED,
        AnonError::LeakGated { .. } => EXIT_LEAK_GATED,
        AnonError::ResumableInterrupted { .. } => EXIT_RESUMABLE,
        AnonError::StateInvalid { .. } => EXIT_USAGE,
        AnonError::BindFailed { .. } => EXIT_BIND,
        AnonError::ConfigInvalid { .. } => EXIT_CONFIG,
        AnonError::TenantStateRefused { .. } => EXIT_TENANT_STATE,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("anonymize") => cmd_anonymize(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("netchaos") => cmd_netchaos(&args[1..]),
        Some("rules") => cmd_rules(),
        _ => {
            eprintln!(
                "usage: confanon <anonymize|batch|chaos|generate|validate|scan|metrics|audit|serve|client|netchaos|rules> [options]\n\
                 \n\
                 anonymize --secret <secret> [--compact] [--audit FILE] [--out-dir DIR] FILE...\n\
                 \u{20}   Anonymize config files under one owner secret. With --out-dir,\n\
                 \u{20}   writes <name>.anon alongside a leak-audit summary; otherwise\n\
                 \u{20}   prints to stdout.\n\
                 batch [--jobs N] [--secret <secret>] [--out-dir DIR] [--quarantine-dir DIR]\n\
                 \u{20}     [--disable-rule NAME[,NAME...]] [--metrics FILE] [--trace FILE]\n\
                 \u{20}     [--bench-json FILE] [--bench-durability FILE] [--resume]\n\
                 \u{20}     [--state DIR] [--decoys N] DIR\n\
                 \u{20}   Anonymize every .cfg under DIR (recursively, one keyed state)\n\
                 \u{20}   using N discovery/rewrite workers. 0 = logical core count; values\n\
                 \u{20}   above the corpus size are clamped to one worker per file; values\n\
                 \u{20}   above 512 are rejected as a usage error. Output is byte-identical\n\
                 \u{20}   at any worker count. Every output is leak-scanned before release;\n\
                 \u{20}   outputs with residual identifiers go to the quarantine directory\n\
                 \u{20}   (never --out-dir) with a machine-readable leak_report.json.\n\
                 \u{20}   With --out-dir, writes are atomic+durable and journaled in\n\
                 \u{20}   run_manifest.json; --resume verifies prior outputs against the\n\
                 \u{20}   journal digests and re-processes only what is missing or torn.\n\
                 \u{20}   --metrics writes a confanon-metrics-v1 document (deterministic +\n\
                 \u{20}   timing sections); --trace writes Chrome trace-event JSON.\n\
                 \u{20}   --state DIR persists the full mapping state (confanon-state-v1)\n\
                 \u{20}   after publishing; a warm rerun skips watermark-unchanged files\n\
                 \u{20}   and keeps every previously issued mapping stable. Requires\n\
                 \u{20}   --out-dir; an invalid, foreign, or corrupt state refuses with\n\
                 \u{20}   exit 2.\n\
                 \u{20}   --decoys N injects N NetCloak-style synthetic chaff routers per\n\
                 \u{20}   network, appended after the real corpus (real outputs stay\n\
                 \u{20}   byte-identical) and flagged \"decoy\" in run_manifest.json.\n\
                 \u{20}   Exit codes: 0 ok, 1 I/O, 2 usage, 3 panic-contained, 4 leak-gated,\n\
                 \u{20}   5 interrupted-but-resumable (journal intact; re-run with --resume).\n\
                 chaos [--seed S] [--count N] --out-dir DIR\n\
                 \u{20}   Emit N chaos-mutated (hostile) config files for pipeline smoke\n\
                 \u{20}   tests; deterministic per seed.\n\
                 generate [--networks N] [--routers M] [--seed S] --out-dir DIR\n\
                 \u{20}   Emit a synthetic corpus (one directory per network).\n\
                 validate --pre-dir DIR --post-dir DIR\n\
                 \u{20}   Run both validation suites over matching file names.\n\
                 scan --record FILE.json FILE...\n\
                 \u{20}   Flag lines in anonymized files that still contain items from a\n\
                 \u{20}   leak record (JSON with asns/ips/words arrays).\n\
                 metrics [--deterministic] [--trace FILE] [--serve FILE] [FILE]\n\
                 \u{20}   Validate a metrics.json (or, with --trace, a trace file; with\n\
                 \u{20}   --serve, a confanon-serve-metrics-v1 stats frame).\n\
                 \u{20}   --deterministic prints only the deterministic section, for\n\
                 \u{20}   diffing two runs.\n\
                 audit --risk --pre-dir DIR --post-dir DIR --secret <secret>\n\
                 \u{20}     [--seed S] [--top-k K] [--known-pairs M] [--candidates N]\n\
                 \u{20}     [--disable-rule NAME[,NAME...]] [--decoys N] [--jobs N]\n\
                 \u{20}     [--report FILE]\n\
                 audit --check-report FILE\n\
                 \u{20}   Quantified risk–utility audit: runs a seeded de-anonymization\n\
                 \u{20}   red team (prefix-structure fingerprinting, degree-distribution\n\
                 \u{20}   matching, known-plaintext ASN recovery) against the released\n\
                 \u{20}   bytes in --post-dir (must hold a run_manifest.json), scores the\n\
                 \u{20}   fraction of routing-design facts preserved, and sweeps weakened\n\
                 \u{20}   variants (rule ablations, scrambled IPs, decoy chaff) into a\n\
                 \u{20}   tradeoff table. Writes a confanon-risk-v1 report (default\n\
                 \u{20}   <post-dir>/risk_report.json); byte-identical for a given corpus,\n\
                 \u{20}   secret, and seed at any --jobs value. --check-report validates\n\
                 \u{20}   an existing report.\n\
                 serve --config confanon.toml [--listen HOST:PORT | --socket PATH]\n\
                 \u{20}     [--port-file FILE] [--queue-depth N] [--request-timeout-ms MS]\n\
                 \u{20}     [--idle-timeout-ms MS] [--max-connections N]\n\
                 \u{20}     [--flush request|drain] [--require-clean-state]\n\
                 \u{20}   Multi-tenant anonymization daemon (CONFANON/1 protocol). Each\n\
                 \u{20}   [tenant.NAME] section holds its own secret + state_dir; tenants\n\
                 \u{20}   are isolated (bounded queues, per-request panic containment,\n\
                 \u{20}   per-tenant leak quarantine, per-tenant request quotas). Hostile\n\
                 \u{20}   peers are contained per connection: malformed frames get one\n\
                 \u{20}   classified ERROR, dribbled frames hit the read deadline, silent\n\
                 \u{20}   connections hit the idle timeout, and arrivals past the\n\
                 \u{20}   connection bound are shed with a BUSY retry-after hint. A tenant\n\
                 \u{20}   whose store fails permanently degrades (DEGRADED responses,\n\
                 \u{20}   flushing suspended) and self-heals via recovery probes, as does\n\
                 \u{20}   a state-quarantined tenant once its store reloads cleanly.\n\
                 \u{20}   SIGTERM or a SHUTDOWN frame drains: in-flight requests finish,\n\
                 \u{20}   every tenant state flushes atomically, exit 0. Serve exits:\n\
                 \u{20}   6 bind failed, 7 config invalid, 8 tenant state refused\n\
                 \u{20}   (--require-clean-state).\n\
                 client --endpoint HOST:PORT|unix:PATH <ping|stats|flush|shutdown|anon>\n\
                 \u{20}     [--tenant NAME] [--name FILE] [--retries N]\n\
                 \u{20}     [--backoff-base-ms MS] [--backoff-cap-ms MS] [--backoff-seed S]\n\
                 \u{20}     [FILE]\n\
                 \u{20}   Minimal CONFANON/1 test client: anon sends FILE (or stdin) and\n\
                 \u{20}   prints the anonymized payload; stats prints the metrics frame.\n\
                 \u{20}   Retries use seeded jittered exponential backoff that honors the\n\
                 \u{20}   server's retry-after-ms hint; retriable BUSY/TIMEOUT responses\n\
                 \u{20}   exit 75 after --retries. DEGRADED prints the payload (exit 0)\n\
                 \u{20}   with a durability warning on stderr.\n\
                 netchaos --upstream HOST:PORT [--seed S] [--profile hostile|lossless]\n\
                 \u{20}     [--port-file FILE]\n\
                 \u{20}   Seeded fault-injecting TCP proxy for serve-hardening tests:\n\
                 \u{20}   dribbles, tears, duplicates, garbles, and disconnects\n\
                 \u{20}   client->server traffic per the profile, deterministically per\n\
                 \u{20}   seed and connection index. SIGTERM stops it (exit 0).\n\
                 rules\n\
                 \u{20}   Print the 28 contextual rules."
            );
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Reads a config file tolerantly: any byte sequence is accepted, with
/// hostile content repaired (lossy UTF-8, control chars, oversized
/// lines) and the repairs reported on stderr.
fn read_config_lossy(path: &Path) -> Result<String, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (text, tally) = sanitize_bytes(&bytes);
    if !tally.is_clean() {
        eprintln!(
            "note: {}: repaired hostile input ({} invalid UTF-8 sequence(s), \
             {} control char(s), {} oversized line(s) truncated)",
            path.display(),
            tally.invalid_utf8_replaced,
            tally.controls_replaced,
            tally.lines_truncated
        );
    }
    Ok(text)
}

/// Minimal option parser: `--key value` flags, bare words are positionals.
fn parse_opts(args: &[String]) -> (BTreeMap<String, String>, Vec<String>) {
    let mut opts = BTreeMap::new();
    let mut pos = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // Boolean flags take no value when followed by another flag
            // or nothing.
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            let boolean = matches!(
                key,
                "compact" | "resume" | "deterministic" | "require-clean-state" | "risk"
            );
            if takes_value && !boolean {
                opts.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                opts.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    (opts, pos)
}

fn cmd_anonymize(args: &[String]) -> ExitCode {
    let (opts, files) = parse_opts(args);
    let Some(secret) = opts.get("secret") else {
        eprintln!("anonymize: --secret is required (the owner's salt; keep it private)");
        return ExitCode::from(2);
    };
    if files.is_empty() {
        eprintln!("anonymize: no input files");
        return ExitCode::from(2);
    }
    let mut cfg = AnonymizerConfig::new(secret.clone().into_bytes());
    cfg.compact_regexps = opts.contains_key("compact");
    let mut anon = Anonymizer::new(cfg);
    let out_dir = opts.get("out-dir").map(PathBuf::from);
    if let Some(d) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(d) {
            eprintln!("anonymize: cannot create {}: {e}", d.display());
            return ExitCode::FAILURE;
        }
    }

    let mut outputs: Vec<(PathBuf, AnonymizedConfig)> = Vec::new();
    for f in &files {
        let path = Path::new(f);
        let text = match read_config_lossy(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("anonymize: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        outputs.push((path.to_path_buf(), anon.anonymize_config(&text)));
    }

    // Owner-side mapping audit (§5's colleague workflow). As sensitive
    // as the originals: written only where explicitly requested, and
    // atomically — a torn audit could silently lose mappings.
    let mut durability = DurabilityStats::default();
    if let Some(audit_path) = opts.get("audit") {
        let json = anon.mapping_audit().to_json().to_string_pretty();
        if let Err(e) = write_atomic(&StdFs, Path::new(audit_path), json.as_bytes(), &mut durability)
        {
            eprintln!("anonymize: {e}");
            return ExitCode::from(exit_for(&e));
        }
        eprintln!("mapping audit written to {audit_path} (KEEP PRIVATE)");
    }

    // §6.1 self-audit: scan our own output for recorded survivors.
    let joined: String = outputs
        .iter()
        .map(|(_, o)| o.text.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let report = confanon::core::leak::LeakScanner::scan_excluding(
        anon.leak_record(),
        anon.emitted_exclusions(),
        &joined,
    );

    match out_dir {
        Some(dir) => {
            for (path, o) in &outputs {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().to_string())
                    .unwrap_or_else(|| "config".to_string());
                let target = dir.join(format!("{name}.anon"));
                if let Err(e) = write_atomic(&StdFs, &target, o.text.as_bytes(), &mut durability) {
                    eprintln!("anonymize: {e}");
                    return ExitCode::from(exit_for(&e));
                }
            }
            eprintln!(
                "anonymized {} file(s); {} line(s) flagged by self-audit{}",
                outputs.len(),
                report.leaks.len(),
                if report.is_clean() { "" } else { " — REVIEW REQUIRED" }
            );
        }
        None => {
            for (_, o) in &outputs {
                print!("{}", o.text);
            }
            if !report.is_clean() {
                eprintln!("warning: {} line(s) flagged by self-audit", report.leaks.len());
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        for l in report.leaks.iter().take(10) {
            eprintln!("  flagged [{}]: {}", l.token, l.line);
        }
        ExitCode::FAILURE
    }
}

/// Collects every `.cfg` file under `dir`, recursively, in sorted order
/// (determinism: the corpus order defines the shared mapping state).
fn collect_cfg_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        // Observability artifacts from a previous run (metrics.json,
        // *.trace.json) are run bookkeeping, never corpus input — skip
        // them even if someone renames one to end in .cfg.
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        if name.as_deref().is_some_and(is_observability_artifact) {
            continue;
        }
        if path.is_dir() {
            collect_cfg_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "cfg") {
            out.push(path);
        }
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> ExitCode {
    // SIGTERM must not kill the run between journal entries: the
    // publish loop polls the flag and converts it into the resumable
    // exit 5 after the in-flight atomic rename completes.
    confanon::core::signals::install_term_handler();
    let (opts, pos) = parse_opts(args);
    let Some(dir) = pos.first().map(PathBuf::from) else {
        eprintln!("batch: a corpus directory is required");
        return ExitCode::from(EXIT_USAGE);
    };
    let jobs: usize = match opts.get("jobs").map(|j| j.parse()) {
        None => 0,
        Some(Ok(n)) if n <= MAX_JOBS => n,
        Some(Ok(n)) => {
            eprintln!(
                "batch: --jobs {n} exceeds the {MAX_JOBS}-worker cap \
                 (0 = logical core count; counts above the corpus size \
                 are clamped to one worker per file)"
            );
            return ExitCode::from(EXIT_USAGE);
        }
        Some(Err(_)) => {
            eprintln!("batch: --jobs must be a non-negative integer");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let secret = match opts.get("secret") {
        Some(s) => s.clone(),
        None => {
            eprintln!(
                "batch: no --secret given; using a well-known default — \
                 output is NOT anonymous, use only for benchmarking"
            );
            "smoke-bench-secret".to_string()
        }
    };
    // Retained separately: the run journal binds itself to the owner
    // secret via a domain-separated fingerprint.
    let secret_bytes = secret.into_bytes();
    let mut cfg = AnonymizerConfig::new(secret_bytes.clone());
    if let Some(spec) = opts.get("disable-rule") {
        for name in spec.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            match ALL_RULES.iter().find(|r| r.name == name) {
                Some(r) => cfg = cfg.without_rule(r.id),
                None => {
                    eprintln!("batch: unknown rule {name:?} (see `confanon rules`)");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        }
    }

    let decoys_per_network: usize = match opts.get("decoys").map(|d| d.parse()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("batch: --decoys must be a non-negative integer");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let out_dir = opts.get("out-dir").map(PathBuf::from);
    // Quarantined bytes must never land in the output directory: a
    // release step that globs --out-dir would ship them.
    let quarantine_dir = opts.get("quarantine-dir").map(PathBuf::from).unwrap_or_else(|| {
        match &out_dir {
            Some(d) => {
                let mut s = d.as_os_str().to_os_string();
                s.push("-quarantine");
                PathBuf::from(s)
            }
            None => PathBuf::from("quarantine"),
        }
    });
    if out_dir.as_deref() == Some(quarantine_dir.as_path()) {
        eprintln!("batch: --quarantine-dir must differ from --out-dir");
        return ExitCode::from(EXIT_USAGE);
    }
    let resume = opts.contains_key("resume");
    if resume && out_dir.is_none() {
        eprintln!("batch: --resume requires --out-dir (the run journal lives there)");
        return ExitCode::from(EXIT_USAGE);
    }
    let state_dir = opts.get("state").map(PathBuf::from);
    if state_dir.is_some() && out_dir.is_none() {
        eprintln!(
            "batch: --state requires --out-dir (incremental runs verify \
             previously released outputs there)"
        );
        return ExitCode::from(EXIT_USAGE);
    }
    if let Some(d) = &state_dir {
        if let Err(e) = std::fs::create_dir_all(d) {
            eprintln!("batch: cannot create {}: {e}", d.display());
            return ExitCode::from(EXIT_IO);
        }
    }
    // Create the release directory up front: it must exist (possibly
    // empty) even when the gate withholds every file, and an unwritable
    // target should fail before any anonymization work is done.
    if let Some(d) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(d) {
            eprintln!("batch: cannot create {}: {e}", d.display());
            return ExitCode::from(EXIT_IO);
        }
    }

    let mut paths = Vec::new();
    if let Err(e) = collect_cfg_files(&dir, &mut paths) {
        eprintln!("batch: {e}");
        return ExitCode::from(EXIT_IO);
    }
    if paths.is_empty() {
        eprintln!("batch: no .cfg files under {}", dir.display());
        return ExitCode::from(EXIT_IO);
    }
    // One clock spans the whole run: it is both the trace timeline and
    // the observability switch (a disabled clock strips every recording,
    // which the overhead benchmark below exploits).
    let clock = Clock::new();
    let mut bin_obs = ObsShard::new(clock);

    // Read and sanitize are separate phases: read is raw byte I/O,
    // sanitize is the hostile-input repair. Both re-run over the whole
    // corpus on --resume, so their counters stay resume-invariant.
    // Large files arrive as read-only memory maps on Linux (zero-copy
    // until sanitize), small ones as owned buffers; `FileBytes` derefs
    // to `&[u8]` either way.
    let mut raw: Vec<(String, confanon::core::FileBytes)> = Vec::with_capacity(paths.len());
    let t_read = bin_obs.span_start();
    for p in &paths {
        let rel = p.strip_prefix(&dir).unwrap_or(p).to_string_lossy().to_string();
        let t_file = bin_obs.span_start();
        match confanon::core::Fs::read_mapped(&StdFs, p) {
            Ok(bytes) => {
                bin_obs.span_end(&rel, "read", 0, t_file);
                bin_obs.count("phase.read.files", 1);
                bin_obs.count("phase.read.bytes", bytes.len() as u64);
                bin_obs.count(
                    if bytes.is_mapped() {
                        "phase.read.mapped_files"
                    } else {
                        "phase.read.buffered_files"
                    },
                    1,
                );
                raw.push((rel, bytes));
            }
            Err(e) => {
                eprintln!("batch: {}: {e}", p.display());
                return ExitCode::from(EXIT_IO);
            }
        }
    }
    bin_obs.span_end("read", "phase", 0, t_read);

    let mut files: Vec<(String, String)> = Vec::with_capacity(raw.len());
    let t_sanitize = bin_obs.span_start();
    for (rel, bytes) in raw {
        let t_file = bin_obs.span_start();
        let (text, tally) = sanitize_bytes(&bytes);
        bin_obs.span_end(&rel, "sanitize", 0, t_file);
        bin_obs.count("phase.sanitize.files", 1);
        if !tally.is_clean() {
            eprintln!(
                "note: {rel}: repaired hostile input ({} invalid UTF-8 sequence(s), \
                 {} control char(s), {} oversized line(s) truncated)",
                tally.invalid_utf8_replaced, tally.controls_replaced, tally.lines_truncated
            );
            bin_obs.count("phase.sanitize.repaired_files", 1);
        }
        bin_obs.count("phase.sanitize.invalid_utf8_replaced", tally.invalid_utf8_replaced);
        bin_obs.count("phase.sanitize.controls_replaced", tally.controls_replaced);
        bin_obs.count("phase.sanitize.lines_truncated", tally.lines_truncated);
        files.push((rel, text));
    }
    bin_obs.span_end("sanitize", "phase", 0, t_sanitize);

    // NetCloak-style chaff: decoys append at the END of the corpus
    // vector, so every real file keeps the exact mappings (and released
    // bytes) of a decoy-free run. Injection is a pure function of
    // (secret, network names, N), which keeps --resume and --state
    // reruns corpus-stable.
    let decoy_names: BTreeSet<String> = if decoys_per_network > 0 {
        let injected =
            confanon::workflow::inject_decoys(&mut files, &secret_bytes, decoys_per_network);
        eprintln!(
            "decoys: injected {} synthetic chaff file(s) ({} requested per network)",
            injected.len(),
            decoys_per_network
        );
        bin_obs.count("phase.decoys.files", injected.len() as u64);
        injected
    } else {
        BTreeSet::new()
    };

    // Incremental state: load and validate any persisted anonymizer
    // state, compute each file's content watermark (digest of the
    // sanitized text — what the pipeline actually anonymizes), and
    // derive the set of files whose stored watermark still matches:
    // they skip the discovery scan entirely and, once their released
    // bytes digest-verify, the rewrite too.
    let names: Vec<String> = files.iter().map(|(n, _)| n.clone()).collect();
    let fingerprint = RunManifest::fingerprint(&secret_bytes);
    let watermarks: BTreeMap<String, String> = files
        .iter()
        .map(|(n, t)| (n.clone(), RunManifest::digest_hex(t.as_bytes())))
        .collect();
    let mut loaded_state: Option<AnonState> = None;
    let mut state_file = String::new();
    if let Some(sdir) = &state_dir {
        state_file = state_path(sdir).display().to_string();
        match AnonState::load(&StdFs, sdir) {
            Ok(None) => {}
            Ok(Some(state)) => {
                // Owner binding is checked up front: a wrong secret (or
                // changed permutation parameters) must refuse before any
                // work, not fork the mapping history.
                let expect_perms = Anonymizer::new(cfg.clone()).perm_fingerprint();
                if let Err(e) = state.check_owner(&state_file, &fingerprint, &expect_perms) {
                    eprintln!("batch: {e}");
                    return ExitCode::from(exit_for(&e));
                }
                loaded_state = Some(state);
            }
            Err(e) => {
                eprintln!("batch: {e}");
                return ExitCode::from(exit_for(&e));
            }
        }
    }
    let mut unchanged: BTreeSet<String> = BTreeSet::new();
    let mut prewarmed: BTreeMap<String, FileDiscovery> = BTreeMap::new();
    if let Some(state) = &loaded_state {
        for (name, mark) in &state.files {
            if watermarks.get(name).is_some_and(|w| *w == mark.watermark) {
                unchanged.insert(name.clone());
                prewarmed.insert(
                    name.clone(),
                    FileDiscovery {
                        stats: mark.stats.clone(),
                        prefilter_fast: mark.prefilter_fast,
                        prefilter_slow: mark.prefilter_slow,
                    },
                );
            }
        }
        eprintln!(
            "state: loaded {state_file} ({} mapped identifier(s)); \
             {} of {} file(s) unchanged",
            state.journal.len(),
            unchanged.len(),
            files.len()
        );
    }

    // With an output directory, the run is journaled: a complete
    // all-pending manifest is durably on disk before any anonymization
    // work. --resume re-verifies a prior journal's claims to build the
    // skip set; a warm --state run instead carries forward released
    // outputs of watermark-unchanged files (digest-verified) and prunes
    // whatever the new corpus no longer vouches for.
    let fs = StdFs;
    let mut skip = BTreeSet::new();
    let mut publisher = match &out_dir {
        Some(dir) => {
            let result = if resume {
                Publisher::resume(&fs, dir, &secret_bytes, &names).map(|(p, verified)| {
                    skip = verified;
                    p
                })
            } else if state_dir.is_some() {
                Publisher::begin_incremental(&fs, dir, &secret_bytes, &names, &unchanged).map(
                    |(p, verified)| {
                        skip = verified;
                        p
                    },
                )
            } else {
                Publisher::begin(&fs, dir, &secret_bytes, &names)
            };
            match result {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("batch: {e}");
                    return ExitCode::from(exit_for(&e));
                }
            }
        }
        None => None,
    };
    // Every Publisher constructor (begin, resume, begin_incremental)
    // builds or rebuilds the manifest from the name list alone, so the
    // decoy provenance flags must be re-stamped on each run.
    if let Some(p) = &mut publisher {
        if let Err(e) = p.mark_decoys(&decoy_names) {
            eprintln!("batch: {e}");
            return ExitCode::from(exit_for(&e));
        }
    }

    let start = std::time::Instant::now();
    let mut restored_nodes = (0u64, 0u64);
    let mut run = match &loaded_state {
        Some(state) => {
            match confanon::workflow::anonymize_corpus_gated_stateful(
                &files,
                cfg.clone(),
                jobs,
                &skip,
                clock,
                confanon::workflow::WarmStart {
                    state,
                    state_file: &state_file,
                    prewarmed: &prewarmed,
                },
            ) {
                Ok((run, restored)) => {
                    restored_nodes = restored;
                    run
                }
                Err(e) => {
                    eprintln!("batch: {e}");
                    return ExitCode::from(exit_for(&e));
                }
            }
        }
        None => confanon::workflow::anonymize_corpus_gated_clocked(
            &files,
            cfg.clone(),
            jobs,
            &skip,
            clock,
        ),
    };
    let elapsed = start.elapsed();

    // The gate report (and any withheld bytes) go to the quarantine
    // directory whenever there is something to report or the caller
    // asked for the directory explicitly.
    let gate_tripped = !run.quarantined.is_empty() || !run.failures.is_empty();
    let qdir_opt = (gate_tripped || opts.contains_key("quarantine-dir"))
        .then_some(quarantine_dir.as_path());
    let mut durability = DurabilityStats::default();
    let t_publish = bin_obs.span_start();
    match &mut publisher {
        Some(p) => {
            // Journal-first publishing: failures, then released outputs
            // in corpus order, then quarantined bytes and the report.
            if let Err(e) = confanon::workflow::publish_gated_run(p, &run, qdir_opt) {
                // The begin/resume journal write succeeded, so a later
                // I/O failure leaves a resumable run on disk.
                let e = match e {
                    AnonError::Io { path, message } if p.manifest_durable() => {
                        AnonError::ResumableInterrupted { path, message }
                    }
                    other => other,
                };
                eprintln!("batch: {e}");
                return ExitCode::from(exit_for(&e));
            }
        }
        None => {
            // No journal without --out-dir, but quarantine artifacts
            // still go through the atomic path: a torn leak report is
            // as misleading as a torn output.
            if let Some(qdir) = qdir_opt {
                for q in &run.quarantined {
                    let target = qdir.join(format!("{}.anon", q.output.name));
                    if let Err(e) =
                        write_atomic(&StdFs, &target, q.output.text.as_bytes(), &mut durability)
                    {
                        eprintln!("batch: {e}");
                        return ExitCode::from(exit_for(&e));
                    }
                }
                let report_path = qdir.join("leak_report.json");
                let json = run.leak_report_json().to_string_pretty();
                if let Err(e) = write_atomic(&StdFs, &report_path, json.as_bytes(), &mut durability)
                {
                    eprintln!("batch: {e}");
                    return ExitCode::from(exit_for(&e));
                }
            }
        }
    }
    if qdir_opt.is_some() {
        eprintln!(
            "leak report written to {}",
            quarantine_dir.join("leak_report.json").display()
        );
    }
    // Persist the anonymizer state LAST: outputs and the manifest are
    // already durable, so a crash before this write leaves a resumable
    // run whose warm rerun replays back to the identical mapping state.
    if let Some(sdir) = &state_dir {
        let marks: BTreeMap<String, FileMark> = run
            .discoveries
            .iter()
            .filter_map(|(name, d)| {
                watermarks.get(name).map(|w| {
                    (
                        name.clone(),
                        FileMark {
                            watermark: w.clone(),
                            stats: d.stats.clone(),
                            prefilter_fast: d.prefilter_fast,
                            prefilter_slow: d.prefilter_slow,
                        },
                    )
                })
            })
            .collect();
        let state = AnonState::capture(&run.anonymizer, fingerprint.clone(), marks);
        let target = state_path(sdir);
        let result = match &mut publisher {
            Some(p) => p.write_report(&target, &state.to_bytes()),
            None => write_atomic(&StdFs, &target, &state.to_bytes(), &mut durability),
        };
        if let Err(e) = result {
            let e = match e {
                AnonError::Io { path, message }
                    if publisher.as_ref().is_some_and(|p| p.manifest_durable()) =>
                {
                    AnonError::ResumableInterrupted { path, message }
                }
                other => other,
            };
            eprintln!("batch: {e}");
            return ExitCode::from(exit_for(&e));
        }
        eprintln!("state written to {}", target.display());
    }
    if let Some(p) = publisher {
        let (_manifest, stats) = p.finish();
        durability.merge(&stats);
    }
    bin_obs.span_end("publish", "phase", 0, t_publish);
    bin_obs.count("phase.publish.released", run.clean.len() as u64);
    bin_obs.count("phase.publish.quarantined", run.quarantined.len() as u64);
    // Fold the binary-side phases (read, sanitize, publish) into the
    // run's shard so the metrics and trace cover the whole pipeline.
    run.obs.merge(&bin_obs);

    let words = run.totals.words_total;
    let secs = elapsed.as_secs_f64().max(1e-9);
    let tokens_per_sec = words as f64 / secs;
    eprintln!(
        "released {} file(s), {} skipped (resume-verified), quarantined {} ({} residual hit(s)), \
         {} panic-contained ({} line(s), {} token(s), {} job(s), {:.3}s — {:.0} tokens/sec)",
        run.clean.len(),
        run.skipped.len(),
        run.quarantined.len(),
        run.leak_count(),
        run.failures.len(),
        run.totals.lines_total,
        words,
        run.jobs,
        secs,
        tokens_per_sec,
    );
    eprintln!(
        "durability: {} atomic write(s), {} fsync(s), {} transient retry(ies)",
        durability.atomic_writes, durability.fsyncs, durability.transient_retries
    );
    for f in run.failures.iter().take(10) {
        eprintln!("  contained: {f}");
    }
    let mut detail_lines = 0usize;
    for q in &run.quarantined {
        if detail_lines >= 20 {
            eprintln!("  (further quarantine detail in leak_report.json)");
            break;
        }
        for l in q.report.leaks.iter().take(5) {
            eprintln!("  quarantined {} [{}]: {}", q.output.name, l.token, l.line);
            detail_lines += 1;
        }
    }

    if let Some(metrics_path) = opts.get("metrics") {
        let mut timing = run
            .metrics_timing_json()
            .with("durability", durability.to_json())
            .with("elapsed_ns", elapsed.as_nanos() as f64);
        if state_dir.is_some() {
            // Timing section: skip counts depend on what state was on
            // disk, not on the corpus alone, so they must not perturb
            // deterministic-metrics equivalence between warm and cold.
            timing = timing.with(
                "state",
                Json::obj()
                    .with("loaded", loaded_state.is_some())
                    .with("created", true)
                    .with("files_skipped", prewarmed.len() as u64)
                    .with("files_processed", (files.len() - prewarmed.len()) as u64)
                    .with("trie4_nodes_restored", restored_nodes.0)
                    .with("trie6_nodes_restored", restored_nodes.1),
            );
        }
        let doc = metrics_doc(run.metrics_deterministic_json(), timing);
        let mut report_stats = DurabilityStats::default();
        if let Err(e) = write_atomic(
            &StdFs,
            Path::new(metrics_path),
            doc.to_string_pretty().as_bytes(),
            &mut report_stats,
        ) {
            eprintln!("batch: {e}");
            return ExitCode::from(exit_for(&e));
        }
        eprintln!("metrics written to {metrics_path}");
    }

    if let Some(trace_path) = opts.get("trace") {
        let worker_names: Vec<String> = (1..=run.jobs).map(|w| format!("worker-{w}")).collect();
        let mut lanes: Vec<(u32, &str)> = vec![(0, "pipeline")];
        lanes.extend(
            worker_names
                .iter()
                .enumerate()
                .map(|(i, n)| (i as u32 + 1, n.as_str())),
        );
        let doc = chrome_trace_json(run.obs.spans(), &lanes);
        let mut report_stats = DurabilityStats::default();
        if let Err(e) = write_atomic(
            &StdFs,
            Path::new(trace_path),
            doc.to_string_pretty().as_bytes(),
            &mut report_stats,
        ) {
            eprintln!("batch: {e}");
            return ExitCode::from(exit_for(&e));
        }
        eprintln!("trace written to {trace_path}");
    }

    if let Some(json_path) = opts.get("bench-json") {
        // The headline the CI throughput bar gates on is min-of-5: the
        // real (published) run above plus four in-memory re-runs with
        // the same instrumented clock. A single-shot wall time on a
        // busy shared-core box swings ±20% (and worse under CPU
        // steal); min-of-N is the standard way to recover the
        // workload's actual cost from noisy samples.
        let mut best_secs = elapsed.as_secs_f64();
        for _ in 0..4 {
            let t = std::time::Instant::now();
            let rerun = confanon::workflow::anonymize_corpus_gated_clocked(
                &files,
                cfg.clone(),
                jobs,
                &skip,
                Clock::new(),
            );
            std::hint::black_box(rerun.clean.len());
            best_secs = best_secs.min(t.elapsed().as_secs_f64());
        }
        let json = Json::obj()
            .with("suite", "pipeline")
            .with("files", (run.clean.len() + run.quarantined.len()) as u64)
            .with("lines", run.totals.lines_total)
            .with("words", words)
            .with("jobs", run.jobs as u64)
            .with("timing", "min-of-5")
            .with("elapsed_ns", best_secs * 1e9)
            .with("tokens_per_sec", words as f64 / best_secs.max(1e-9))
            .with("durability", durability.to_json())
            .with("observability", observability_overhead_json(&files, &cfg, jobs))
            .with("discovery", discovery_bench_json(&files, &cfg))
            .with("rewrite", rewrite_bench_json(&files, &cfg, jobs));
        let mut report_stats = DurabilityStats::default();
        if let Err(e) = write_atomic(
            &StdFs,
            Path::new(json_path),
            json.to_string_pretty().as_bytes(),
            &mut report_stats,
        ) {
            eprintln!("batch: {e}");
            return ExitCode::from(exit_for(&e));
        }
        eprintln!("throughput written to {json_path}");
    }

    if let Some(json_path) = opts.get("bench-durability") {
        match durability_bench_json(&run, tokens_per_sec, &durability) {
            Ok(json) => {
                let mut report_stats = DurabilityStats::default();
                if let Err(e) = write_atomic(
                    &StdFs,
                    Path::new(json_path),
                    json.to_string_pretty().as_bytes(),
                    &mut report_stats,
                ) {
                    eprintln!("batch: {e}");
                    return ExitCode::from(exit_for(&e));
                }
                eprintln!("durability bench written to {json_path}");
            }
            Err(e) => {
                eprintln!("batch: durability bench: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }

    if !run.quarantined.is_empty() {
        ExitCode::from(EXIT_LEAK_GATED)
    } else if !run.failures.is_empty() {
        ExitCode::from(EXIT_PANIC_CONTAINED)
    } else {
        ExitCode::from(EXIT_OK)
    }
}

/// Times the gated pipeline with observability on ([`Clock::new`])
/// versus stripped ([`Clock::disabled`] — every recording a no-op),
/// min-of-3 each to damp scheduler noise. The ratio quantifies what the
/// always-on instrumentation costs; the metrics-invariant suite holds
/// it under 5% on the smoke corpus.
fn observability_overhead_json(
    files: &[(String, String)],
    cfg: &AnonymizerConfig,
    jobs: usize,
) -> Json {
    let time_with = |clock: Clock| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = std::time::Instant::now();
            let run = confanon::workflow::anonymize_corpus_gated_clocked(
                files,
                cfg.clone(),
                jobs,
                &BTreeSet::new(),
                clock,
            );
            std::hint::black_box(run.clean.len());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let instrumented = time_with(Clock::new());
    let stripped = time_with(Clock::disabled());
    Json::obj()
        .with("instrumented_ns", instrumented * 1e9)
        .with("stripped_ns", stripped * 1e9)
        .with("overhead_ratio", instrumented / stripped.max(1e-9))
}

/// Worker count the discovery benchmark pins, matching the acceptance
/// target ("sharded ≥1.5× sequential at `--jobs 4`").
const DISCOVERY_BENCH_JOBS: usize = 4;

/// Benchmarks the discovery pass in isolation: the sharded scan versus
/// the sequential one, and the rule-engine prefilter on versus off
/// (min-of-3 each, observability stripped so the clock measures only the
/// pass itself). The corpus is tiled up to at least 64 files so worker
/// spawn and merge/replay overhead cannot dominate a small smoke corpus.
/// Also cross-checks — on this very corpus — that the prefilter changes
/// no per-rule fire count; that boolean is recorded alongside the
/// timings, so a regression shows up in `BENCH_pipeline.json`, not just
/// in the test suite.
fn discovery_bench_json(files: &[(String, String)], cfg: &AnonymizerConfig) -> Json {
    use confanon::core::{BatchInput, BatchPipeline};

    let mut inputs: Vec<BatchInput> = Vec::new();
    let mut tile = 0usize;
    while inputs.len() < 64 && !files.is_empty() {
        for (name, text) in files {
            inputs.push(BatchInput {
                name: format!("tile{tile}/{name}"),
                text: text.clone(),
            });
        }
        tile += 1;
    }
    let bytes: u64 = inputs.iter().map(|f| f.text.len() as u64).sum();

    let time_discover = |sequential: bool, prefilter: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let mut c = cfg.clone();
            c.disable_prefilter = !prefilter;
            let mut p = BatchPipeline::new(c, DISCOVERY_BENCH_JOBS)
                .with_clock(Clock::disabled())
                .with_sequential_discovery(sequential);
            let t = std::time::Instant::now();
            let failures = p.discover_corpus(&inputs);
            std::hint::black_box(failures.len());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let sequential = time_discover(true, true);
    let sharded = time_discover(false, true);
    let prefilter_off = time_discover(true, false);

    let fires = |prefilter: bool| {
        let mut c = cfg.clone();
        c.disable_prefilter = !prefilter;
        let mut p = BatchPipeline::new(c, DISCOVERY_BENCH_JOBS).with_clock(Clock::disabled());
        p.discover_corpus(&inputs);
        p.anonymizer().total_stats().rule_fires_complete()
    };
    let rule_fires_identical = fires(true) == fires(false);

    Json::obj()
        .with("files", inputs.len() as u64)
        .with("bytes", bytes)
        .with("jobs", DISCOVERY_BENCH_JOBS as u64)
        // Logical cores actually available: below 2, the sharded arm can
        // only win by its deferred per-occurrence trie/record work, not
        // by parallel scanning — interpret `sharded_speedup` accordingly.
        .with(
            "parallelism",
            std::thread::available_parallelism().map_or(1, usize::from) as u64,
        )
        .with("sequential_ns", sequential * 1e9)
        .with("sharded_ns", sharded * 1e9)
        .with("sharded_speedup", sequential / sharded.max(1e-9))
        .with(
            "prefilter",
            Json::obj()
                .with("enabled_ns", sequential * 1e9)
                .with("disabled_ns", prefilter_off * 1e9)
                .with("speedup", prefilter_off / sequential.max(1e-9))
                .with("rule_fires_identical", rule_fires_identical),
        )
}

/// Benchmarks the borrow-or-own rewrite against the retained legacy
/// clone-always emit path (min-of-3 each, observability stripped so the
/// clock measures only the pass), and cross-checks — on this very
/// corpus — that disabling zero-copy changes neither a single output
/// byte nor any per-rule fire count. Those two booleans are recorded
/// alongside the timings, so an equivalence regression shows up in
/// `BENCH_pipeline.json`, not just in the test suite. The borrowed-line
/// fraction and the allocations the `Cow` path avoided come from the
/// fastest zero-copy run itself.
fn rewrite_bench_json(files: &[(String, String)], cfg: &AnonymizerConfig, jobs: usize) -> Json {
    use confanon::core::RewriteStats;
    use confanon::workflow::GatedCorpusRun;

    let run_once = |zero_copy: bool| -> (f64, GatedCorpusRun) {
        let mut c = cfg.clone();
        c.disable_zero_copy = !zero_copy;
        let t = std::time::Instant::now();
        let run = confanon::workflow::anonymize_corpus_gated_clocked(
            files,
            c,
            jobs,
            &BTreeSet::new(),
            Clock::disabled(),
        );
        (t.elapsed().as_secs_f64(), run)
    };
    let time_with = |zero_copy: bool| -> (f64, GatedCorpusRun) {
        let (mut best, mut run) = run_once(zero_copy);
        for _ in 0..2 {
            let (secs, rerun) = run_once(zero_copy);
            if secs < best {
                best = secs;
                run = rerun;
            }
        }
        (best, run)
    };
    let (zc_secs, zc_run) = time_with(true);
    let (legacy_secs, legacy_run) = time_with(false);

    fn texts(run: &GatedCorpusRun) -> BTreeMap<&str, &str> {
        run.clean
            .iter()
            .map(|o| (o.name.as_str(), o.text.as_str()))
            .chain(
                run.quarantined
                    .iter()
                    .map(|q| (q.output.name.as_str(), q.output.text.as_str())),
            )
            .collect()
    }
    let outputs_identical = texts(&zc_run) == texts(&legacy_run);
    let rule_fires_identical =
        zc_run.totals.rule_fires_complete() == legacy_run.totals.rule_fires_complete();

    let mut rewrite = RewriteStats::default();
    for o in zc_run
        .clean
        .iter()
        .chain(zc_run.quarantined.iter().map(|q| &q.output))
    {
        rewrite.absorb(&o.rewrite);
    }

    let words = zc_run.totals.words_total as f64;
    Json::obj()
        .with("jobs", jobs as u64)
        .with("zero_copy_ns", zc_secs * 1e9)
        .with("legacy_ns", legacy_secs * 1e9)
        .with("tokens_per_sec_zero_copy", words / zc_secs.max(1e-9))
        .with("tokens_per_sec_legacy", words / legacy_secs.max(1e-9))
        .with("speedup", legacy_secs / zc_secs.max(1e-9))
        .with("outputs_identical", outputs_identical)
        .with("rule_fires_identical", rule_fires_identical)
        .with("rewrite_stats", rewrite.to_json())
}

/// Times re-publishing the run's released outputs through the atomic
/// durable path versus plain buffered writes (both into throwaway
/// scratch directories), quantifying what the journal and fsyncs cost
/// relative to `BENCH_pipeline.json`'s anonymization throughput.
fn durability_bench_json(
    run: &confanon::workflow::GatedCorpusRun,
    pipeline_tokens_per_sec: f64,
    run_durability: &DurabilityStats,
) -> Result<confanon_testkit::json::Json, String> {
    let scratch = std::env::temp_dir().join(format!(
        "confanon-bench-durability-{}",
        std::process::id()
    ));
    let durable_dir = scratch.join("durable");
    let plain_dir = scratch.join("plain");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&plain_dir).map_err(|e| format!("{}: {e}", plain_dir.display()))?;

    // Flatten names: the scratch layout does not need the corpus tree.
    let flat = |name: &str| format!("{}.anon", name.replace(['/', '\\'], "_"));
    let mut bytes_total = 0u64;
    let mut bench_stats = DurabilityStats::default();
    let t0 = std::time::Instant::now();
    for o in &run.clean {
        write_atomic(
            &StdFs,
            &durable_dir.join(flat(&o.name)),
            o.text.as_bytes(),
            &mut bench_stats,
        )
        .map_err(|e| e.to_string())?;
        bytes_total += o.text.len() as u64;
    }
    let durable_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let t1 = std::time::Instant::now();
    for o in &run.clean {
        let target = plain_dir.join(flat(&o.name));
        std::fs::write(&target, o.text.as_bytes())
            .map_err(|e| format!("{}: {e}", target.display()))?;
    }
    let plain_secs = t1.elapsed().as_secs_f64().max(1e-9);
    let _ = std::fs::remove_dir_all(&scratch);

    let files = run.clean.len() as u64;
    Ok(confanon_testkit::json::Json::obj()
        .with("suite", "durability")
        .with("files", files)
        .with("bytes", bytes_total)
        .with("durable_elapsed_ns", durable_secs * 1e9)
        .with("plain_elapsed_ns", plain_secs * 1e9)
        .with("durable_files_per_sec", files as f64 / durable_secs)
        .with("plain_files_per_sec", files as f64 / plain_secs)
        .with("overhead_ratio", durable_secs / plain_secs)
        .with("bench_durability", bench_stats.to_json())
        .with("run_durability", run_durability.to_json())
        .with("pipeline_tokens_per_sec", pipeline_tokens_per_sec))
}

fn cmd_chaos(args: &[String]) -> ExitCode {
    let (opts, _) = parse_opts(args);
    let Some(out_dir) = opts.get("out-dir").map(PathBuf::from) else {
        eprintln!("chaos: --out-dir is required");
        return ExitCode::from(EXIT_USAGE);
    };
    let seed: u64 = opts.get("seed").and_then(|s| s.parse().ok()).unwrap_or(2004);
    let count: usize = opts.get("count").and_then(|s| s.parse().ok()).unwrap_or(64);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("chaos: cannot create {}: {e}", out_dir.display());
        return ExitCode::from(EXIT_IO);
    }

    let mut mutator = confanon_testkit::chaos::ChaosMutator::new(seed);
    let mut durability = DurabilityStats::default();
    let mut written = 0usize;
    let mut round = 0u64;
    while written < count {
        // Each round draws a fresh synthetic dataset; rounds advance the
        // generator seed deterministically so any count is reachable.
        let spec = DatasetSpec {
            seed: seed.wrapping_add(round),
            networks: 2,
            mean_routers: 8,
            backbone_fraction: 0.35,
        };
        round += 1;
        for net in &generate_dataset(&spec).networks {
            for r in &net.routers {
                if written == count {
                    break;
                }
                let mutated = mutator.mutate(r.config.as_bytes());
                let target = out_dir.join(format!("chaos-{written:03}.cfg"));
                if let Err(e) = write_atomic(&StdFs, &target, &mutated.bytes, &mut durability) {
                    eprintln!("chaos: {e}");
                    return ExitCode::from(exit_for(&e));
                }
                written += 1;
            }
        }
    }
    eprintln!(
        "wrote {written} chaos-mutated config(s) (seed {seed}) into {}",
        out_dir.display()
    );
    ExitCode::from(EXIT_OK)
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let (opts, _) = parse_opts(args);
    let Some(out_dir) = opts.get("out-dir").map(PathBuf::from) else {
        eprintln!("generate: --out-dir is required");
        return ExitCode::from(2);
    };
    let spec = DatasetSpec {
        seed: opts.get("seed").and_then(|s| s.parse().ok()).unwrap_or(2004),
        networks: opts.get("networks").and_then(|s| s.parse().ok()).unwrap_or(4),
        mean_routers: opts.get("routers").and_then(|s| s.parse().ok()).unwrap_or(8),
        backbone_fraction: 0.35,
    };
    let ds = generate_dataset(&spec);
    for net in &ds.networks {
        let dir = out_dir.join(&net.name);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("generate: {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for r in &net.routers {
            let file = dir.join(format!("{}.cfg", r.hostname));
            if let Err(e) = std::fs::write(&file, &r.config) {
                eprintln!("generate: {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "generated {} network(s), {} router(s), {} line(s) into {}",
        ds.networks.len(),
        ds.total_routers(),
        ds.total_lines(),
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let (opts, _) = parse_opts(args);
    let (Some(pre), Some(post)) = (opts.get("pre-dir"), opts.get("post-dir")) else {
        eprintln!("validate: --pre-dir and --post-dir are required");
        return ExitCode::from(2);
    };
    let load = |dir: &str| -> Result<Vec<(String, Config)>, String> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{dir}: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            // The batch run journal and observability artifacts live
            // beside the released files; they are bookkeeping, not
            // configs to validate.
            .filter(|p| p.file_name().is_none_or(|n| n != RUN_MANIFEST_NAME))
            .filter(|p| {
                p.file_name()
                    .is_none_or(|n| !is_observability_artifact(&n.to_string_lossy()))
            })
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|p| {
                let name = p.file_name().map(|n| n.to_string_lossy().to_string());
                let name = name.unwrap_or_default().replace(".anon", "");
                std::fs::read_to_string(&p)
                    .map(|t| (name, Config::parse(&t)))
                    .map_err(|e| format!("{}: {e}", p.display()))
            })
            .collect()
    };
    let (pre_cfgs, post_cfgs) = match (load(pre), load(post)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("validate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pre_names: Vec<&String> = pre_cfgs.iter().map(|(n, _)| n).collect();
    let post_names: Vec<&String> = post_cfgs.iter().map(|(n, _)| n).collect();
    if pre_names != post_names {
        eprintln!("validate: file sets differ: {pre_names:?} vs {post_names:?}");
        return ExitCode::FAILURE;
    }
    let pre_c: Vec<Config> = pre_cfgs.into_iter().map(|(_, c)| c).collect();
    let post_c: Vec<Config> = post_cfgs.into_iter().map(|(_, c)| c).collect();

    let s1 = compare_properties(&network_properties(&pre_c), &network_properties(&post_c));
    let s2 = compare_designs(&pre_c, &post_c);
    println!(
        "suite1: {}{}",
        if s1.passed() { "PASS" } else { "FAIL" },
        if s1.passed() {
            String::new()
        } else {
            format!(" (differs: {:?})", s1.differing_fields)
        }
    );
    println!(
        "suite2: {}{}",
        if s2.passed() { "PASS" } else { "FAIL" },
        if s2.passed() {
            String::new()
        } else {
            format!(" (routers: {:?})", s2.differing_routers)
        }
    );
    if s1.passed() && s2.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_scan(args: &[String]) -> ExitCode {
    let (opts, files) = parse_opts(args);
    let Some(record_path) = opts.get("record") else {
        eprintln!("scan: --record FILE.json is required");
        return ExitCode::from(2);
    };
    let record: confanon::core::leak::LeakRecord = match std::fs::read_to_string(record_path)
        .map_err(|e| e.to_string())
        .and_then(|t| confanon::core::leak::LeakRecord::from_json_str(&t))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan: {record_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scanner = confanon::core::leak::LeakScanner::new(&record);
    let mut total = 0usize;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scan: {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = scanner.scan(&text);
        for l in &report.leaks {
            println!("{f}:{}: [{}] {}", l.line_no + 1, l.token, l.line);
        }
        total += report.leaks.len();
    }
    eprintln!("{total} line(s) flagged across {} file(s)", files.len());
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `confanon metrics`: validate observability artifacts from the shell.
///
/// * `confanon metrics FILE` — parse and shape-check a metrics.json.
/// * `confanon metrics --deterministic FILE` — print only the
///   deterministic section (pretty), so two runs can be `diff`ed.
/// * `confanon metrics --trace FILE` — parse and shape-check a Chrome
///   trace file instead.
fn cmd_metrics(args: &[String]) -> ExitCode {
    let (opts, files) = parse_opts(args);

    if let Some(trace_path) = opts.get("trace") {
        let text = match std::fs::read_to_string(trace_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("metrics: {trace_path}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        return match Json::parse(&text).map_err(|e| e.to_string()).and_then(|doc| {
            validate_trace(&doc)?;
            Ok(doc)
        }) {
            Ok(doc) => {
                let events = doc
                    .get("traceEvents")
                    .and_then(Json::as_array)
                    .map_or(0, |a| a.len());
                eprintln!("{trace_path}: valid trace ({events} event(s))");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("metrics: {trace_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(frame_path) = opts.get("serve") {
        let text = match std::fs::read_to_string(frame_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("metrics: {frame_path}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        return match Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| {
                confanon::obs::validate_serve_metrics(&doc)?;
                Ok(doc)
            }) {
            Ok(doc) => {
                let tenants = match doc.get("tenants") {
                    Some(Json::Obj(members)) => members.len(),
                    _ => 0,
                };
                eprintln!(
                    "{frame_path}: valid {} ({tenants} tenant(s))",
                    confanon::obs::SERVE_METRICS_SCHEMA
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("metrics: {frame_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(path) = files.first() else {
        eprintln!("metrics: a metrics.json file (or --trace/--serve FILE) is required");
        return ExitCode::from(EXIT_USAGE);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("metrics: {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("metrics: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_metrics(&doc) {
        eprintln!("metrics: {path}: {e}");
        return ExitCode::FAILURE;
    }
    if opts.contains_key("deterministic") {
        match doc.get("deterministic") {
            Some(section) => println!("{}", section.to_string_pretty()),
            None => {
                // validate_metrics guarantees the section exists; keep
                // the fail-closed posture anyway.
                eprintln!("metrics: {path}: missing deterministic section");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("{path}: valid {}", confanon::obs::METRICS_SCHEMA);
    }
    ExitCode::SUCCESS
}

/// `confanon audit --risk`: the quantified risk–utility harness.
///
/// Prices a *released* corpus the way an adversary would: the red team
/// sees only the anonymized bytes (plus, for the known-plaintext ASN
/// attack, the handful of pairs a BGP looking glass would leak), while
/// the utility score diffs the §5 routing-design facts extractable
/// before and after anonymization. Everything is seeded — the written
/// `confanon-risk-v1` report is byte-identical across repeats and
/// `--jobs` values for a fixed corpus, secret, and seed.
fn cmd_audit(args: &[String]) -> ExitCode {
    use confanon::core::FileStatus;
    use confanon::obs::RISK_REPORT_FILE_NAME;
    use confanon::redteam::{tradeoff_line, validate_risk_report, AuditOptions};

    let (opts, _pos) = parse_opts(args);

    // Validation mode: `audit --check-report FILE` mirrors `confanon
    // metrics` — parse, validate against confanon-risk-v1, exit nonzero
    // on any malformation.
    if let Some(path) = opts.get("check-report") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("audit: {path}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        return match Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| {
                validate_risk_report(&doc)?;
                Ok(doc)
            }) {
            Ok(doc) => {
                let rows = doc
                    .get("tradeoff")
                    .and_then(Json::as_array)
                    .map_or(0, |a| a.len());
                eprintln!(
                    "{path}: valid {} ({rows} tradeoff row(s))",
                    confanon::redteam::RISK_SCHEMA
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("audit: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if !opts.contains_key("risk") {
        eprintln!("audit: --risk is required (or --check-report FILE)");
        return ExitCode::from(EXIT_USAGE);
    }
    let (Some(pre_dir), Some(post_dir)) = (
        opts.get("pre-dir").map(PathBuf::from),
        opts.get("post-dir").map(PathBuf::from),
    ) else {
        eprintln!("audit: --risk requires --pre-dir DIR and --post-dir DIR");
        return ExitCode::from(EXIT_USAGE);
    };
    let Some(secret) = opts.get("secret") else {
        eprintln!("audit: --secret is required (the owner secret the corpus was anonymized under)");
        return ExitCode::from(EXIT_USAGE);
    };
    let secret_bytes = secret.clone().into_bytes();

    // Numeric knobs, each falling back to the AuditOptions default.
    let defaults = AuditOptions::default();
    let parse_usize = |key: &str, fallback: usize| -> Result<usize, ExitCode> {
        match opts.get(key).map(|v| v.parse()) {
            None => Ok(fallback),
            Some(Ok(n)) => Ok(n),
            Some(Err(_)) => {
                eprintln!("audit: --{key} must be a non-negative integer");
                Err(ExitCode::from(EXIT_USAGE))
            }
        }
    };
    let top_k = match parse_usize("top-k", defaults.top_k) {
        Ok(n) => n,
        Err(c) => return c,
    };
    let known_pairs = match parse_usize("known-pairs", defaults.known_pairs) {
        Ok(n) => n,
        Err(c) => return c,
    };
    let candidates = match parse_usize("candidates", defaults.candidates) {
        Ok(n) => n,
        Err(c) => return c,
    };
    let decoy_sweep = match parse_usize("decoys", 0) {
        Ok(n) => n,
        Err(c) => return c,
    };
    let jobs = match parse_usize("jobs", 0) {
        Ok(n) if n <= MAX_JOBS => n,
        Ok(n) => {
            eprintln!("audit: --jobs {n} exceeds the {MAX_JOBS}-worker cap");
            return ExitCode::from(EXIT_USAGE);
        }
        Err(c) => return c,
    };
    let seed: u64 = match opts.get("seed").map(|s| s.parse()) {
        None => defaults.seed,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("audit: --seed must be a non-negative integer");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let sweep_rules: Vec<String> = match opts.get("disable-rule") {
        Some(spec) => {
            let mut rules = Vec::new();
            for name in spec.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                if !ALL_RULES.iter().any(|r| r.name == name) {
                    eprintln!("audit: unknown rule {name:?} (see `confanon rules`)");
                    return ExitCode::from(EXIT_USAGE);
                }
                rules.push(name.to_string());
            }
            rules
        }
        None => confanon::workflow::DEFAULT_SWEEP_RULES
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };

    // The released side must be an anonymized output directory: the run
    // journal is both the file list and the decoy provenance record.
    // Anything else — a raw corpus, an empty directory — is a usage
    // error, not an I/O error: auditing non-anonymized bytes as if they
    // were a release would report nonsense risk numbers.
    let manifest_path = post_dir.join(RUN_MANIFEST_NAME);
    let manifest = match std::fs::read_to_string(&manifest_path)
        .map_err(|e| e.to_string())
        .and_then(|t| RunManifest::from_json_str(&t).map_err(|e| e.to_string()))
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!(
                "audit: {} is not an anonymized output directory \
                 (no readable {RUN_MANIFEST_NAME}: {e})",
                post_dir.display()
            );
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if manifest.secret_fingerprint != RunManifest::fingerprint(&secret_bytes) {
        // Proceed anyway: auditing a foreign-secret release against
        // this secret is the negative control (scores must collapse to
        // chance), so a mismatch is a warning, not a refusal.
        eprintln!(
            "audit: warning: --secret does not match the manifest's owner \
             fingerprint; attack scores will reflect a wrong-key adversary"
        );
    }
    let decoys: BTreeSet<String> = manifest.decoy_names().into_iter().collect();
    let mut post: Vec<(String, String)> = Vec::new();
    for f in &manifest.files {
        if f.status != FileStatus::Released {
            continue;
        }
        let path = post_dir.join(format!("{}.anon", f.name));
        match read_config_lossy(&path) {
            Ok(text) => post.push((f.name.clone(), text)),
            Err(e) => {
                eprintln!("audit: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }
    if post.is_empty() {
        eprintln!(
            "audit: no released outputs in {} (manifest has no released entries)",
            post_dir.display()
        );
        return ExitCode::from(EXIT_USAGE);
    }

    // The pre side re-reads the original corpus exactly the way batch
    // does (sorted recursion, hostile-input repair) so names line up
    // with the manifest entries.
    let mut pre_paths = Vec::new();
    if let Err(e) = collect_cfg_files(&pre_dir, &mut pre_paths) {
        eprintln!("audit: {e}");
        return ExitCode::from(EXIT_IO);
    }
    if pre_paths.is_empty() {
        eprintln!("audit: no .cfg files under {}", pre_dir.display());
        return ExitCode::from(EXIT_USAGE);
    }
    let mut pre: Vec<(String, String)> = Vec::with_capacity(pre_paths.len());
    for p in &pre_paths {
        let rel = p
            .strip_prefix(&pre_dir)
            .unwrap_or(p)
            .to_string_lossy()
            .to_string();
        match read_config_lossy(p) {
            Ok(text) => pre.push((rel, text)),
            Err(e) => {
                eprintln!("audit: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }

    let audit = confanon::workflow::risk_audit(&confanon::workflow::RiskAuditInput {
        pre: &pre,
        post: &post,
        decoys: &decoys,
        secret: &secret_bytes,
        jobs,
        opts: AuditOptions {
            seed,
            top_k,
            known_pairs,
            candidates,
        },
        sweep_rules: &sweep_rules,
        decoy_sweep,
    });
    // Self-check before writing: a report this command emits must pass
    // its own validator, or the schema contract is broken.
    if let Err(e) = validate_risk_report(&audit.report) {
        eprintln!("audit: internal error: generated report failed validation: {e}");
        return ExitCode::from(EXIT_IO);
    }

    let report_path = opts
        .get("report")
        .map(PathBuf::from)
        .unwrap_or_else(|| post_dir.join(RISK_REPORT_FILE_NAME));
    let mut durability = DurabilityStats::default();
    let json = audit.report.to_string_pretty();
    if let Err(e) = write_atomic(&StdFs, &report_path, json.as_bytes(), &mut durability) {
        eprintln!("audit: {e}");
        return ExitCode::from(exit_for(&e));
    }

    println!("{}", tradeoff_line("baseline", &audit.baseline));
    for row in &audit.rows {
        println!("{}", tradeoff_line(&row.label, &row.suite));
    }
    eprintln!(
        "risk report written to {} ({} tradeoff row(s), risk {:.3}, utility {:.3})",
        report_path.display(),
        audit.rows.len() + 1,
        audit.baseline.risk_overall(),
        audit.baseline.utility.fraction()
    );
    ExitCode::from(EXIT_OK)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    use confanon::core::serve::{run_daemon, ServeConfig, ServeOptions};
    use confanon::core::tenant::FlushMode;

    let (opts, pos) = parse_opts(args);
    if let Some(extra) = pos.first() {
        eprintln!("serve: unexpected positional argument {extra:?}");
        return ExitCode::from(EXIT_USAGE);
    }
    let Some(config_path) = opts.get("config") else {
        eprintln!("serve: --config confanon.toml is required (tenant roster + endpoint)");
        return ExitCode::from(EXIT_USAGE);
    };
    let text = match std::fs::read_to_string(config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("serve: {config_path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let mut cfg = match ServeConfig::parse(config_path, &text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(exit_for(&e));
        }
    };

    // CLI overrides beat the file; an endpoint override replaces the
    // file's endpoint entirely (exactly one may remain set).
    if let Some(listen) = opts.get("listen") {
        cfg.listen = Some(listen.clone());
        cfg.socket = None;
    }
    if let Some(socket) = opts.get("socket") {
        cfg.socket = Some(PathBuf::from(socket));
        cfg.listen = None;
    }
    if let Some(depth) = opts.get("queue-depth") {
        match depth.parse::<usize>() {
            Ok(n) if (1..=4096).contains(&n) => cfg.queue_depth = n,
            _ => {
                eprintln!("serve: --queue-depth must be an integer in 1..=4096");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    if let Some(ms) = opts.get("request-timeout-ms") {
        match ms.parse::<u64>() {
            Ok(n) if n > 0 => cfg.request_timeout_ms = n,
            _ => {
                eprintln!("serve: --request-timeout-ms must be a positive integer");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    if let Some(ms) = opts.get("idle-timeout-ms") {
        match ms.parse::<u64>() {
            Ok(n) if n > 0 => cfg.idle_timeout_ms = n,
            _ => {
                eprintln!("serve: --idle-timeout-ms must be a positive integer");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    if let Some(max) = opts.get("max-connections") {
        match max.parse::<usize>() {
            Ok(n) if (1..=4096).contains(&n) => cfg.max_connections = n,
            _ => {
                eprintln!("serve: --max-connections must be an integer in 1..=4096");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    if let Some(mode) = opts.get("flush") {
        match FlushMode::parse(mode) {
            Some(m) => cfg.flush = m,
            None => {
                eprintln!("serve: --flush must be `request` or `drain`");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let serve_opts = ServeOptions {
        port_file: opts.get("port-file").map(PathBuf::from),
        require_clean_state: opts.contains_key("require-clean-state"),
    };

    match run_daemon(&cfg, &serve_opts, config_path) {
        Ok(summary) => {
            eprintln!(
                "serve: drained cleanly — {} connection(s), {} request(s), \
                 {} busy rejection(s), {} tenant(s) flushed",
                summary.connections, summary.requests, summary.busy_rejections, summary.tenants
            );
            ExitCode::from(EXIT_OK)
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::from(exit_for(&e))
        }
    }
}

/// Exit code for "the daemon said try again later" — the conventional
/// sysexits `EX_TEMPFAIL`, distinct from every pipeline error code.
const EXIT_RETRIABLE: u8 = 75;

fn cmd_client(args: &[String]) -> ExitCode {
    use confanon_testkit::serveclient::{Backoff, ServeClient};
    use std::io::Read as _;

    let (opts, pos) = parse_opts(args);
    let Some(endpoint) = opts.get("endpoint") else {
        eprintln!("client: --endpoint HOST:PORT (or unix:PATH) is required");
        return ExitCode::from(EXIT_USAGE);
    };
    let Some(action) = pos.first().map(String::as_str) else {
        eprintln!("client: an action is required: ping|stats|flush|shutdown|anon");
        return ExitCode::from(EXIT_USAGE);
    };
    if !matches!(action, "ping" | "stats" | "flush" | "shutdown" | "anon") {
        eprintln!("client: unknown action {action:?} (ping|stats|flush|shutdown|anon)");
        return ExitCode::from(EXIT_USAGE);
    }
    // Retry knobs are validated before any connection is attempted, so
    // a typo'd flag is a usage error even when no daemon is up.
    let retries: usize = match opts.get("retries").map(|r| r.parse()) {
        None => 10,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => {
            eprintln!("client: --retries must be a positive integer");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let parse_ms = |key: &str, default: u64| -> Result<u64, ExitCode> {
        match opts.get(key).map(|v| v.parse::<u64>()) {
            None => Ok(default),
            Some(Ok(n)) if n >= 1 => Ok(n),
            Some(_) => {
                eprintln!("client: --{key} must be a positive integer");
                Err(ExitCode::from(EXIT_USAGE))
            }
        }
    };
    let base_ms = match parse_ms("backoff-base-ms", 25) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let cap_ms = match parse_ms("backoff-cap-ms", 1000) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let seed = match opts.get("backoff-seed").map(|v| v.parse::<u64>()) {
        None => 0,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("client: --backoff-seed must be an unsigned integer");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut client = match ServeClient::connect(endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client: {endpoint}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };

    let reply = match action {
        "ping" => client.ping(),
        "stats" => client.stats(),
        "shutdown" => client.shutdown(),
        "flush" => {
            let Some(tenant) = opts.get("tenant") else {
                eprintln!("client: flush requires --tenant NAME");
                return ExitCode::from(EXIT_USAGE);
            };
            client.flush(tenant)
        }
        "anon" => {
            let Some(tenant) = opts.get("tenant") else {
                eprintln!("client: anon requires --tenant NAME");
                return ExitCode::from(EXIT_USAGE);
            };
            let (payload, default_name) = match pos.get(1) {
                Some(file) => match std::fs::read(file) {
                    Ok(bytes) => {
                        let name = Path::new(file)
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_else(|| "stdin".to_string());
                        (bytes, name)
                    }
                    Err(e) => {
                        eprintln!("client: {file}: {e}");
                        return ExitCode::from(EXIT_IO);
                    }
                },
                None => {
                    let mut bytes = Vec::new();
                    if let Err(e) = std::io::stdin().read_to_end(&mut bytes) {
                        eprintln!("client: stdin: {e}");
                        return ExitCode::from(EXIT_IO);
                    }
                    (bytes, "stdin".to_string())
                }
            };
            let name = opts.get("name").cloned().unwrap_or(default_name);
            let mut backoff = Backoff::new(seed, base_ms, cap_ms);
            client.anon_with_backoff(tenant, &name, &payload, retries, &mut backoff)
        }
        // Validated above; unreachable by construction.
        _ => unreachable!("action validated before connect"),
    };

    match reply {
        Ok(reply) => {
            use std::io::Write as _;
            let ok = matches!(reply.status.as_str(), "OK" | "BYE" | "DEGRADED");
            if ok {
                // DEGRADED carries the anonymized text (mappings are
                // resident and sticky) but the daemon could not flush it
                // durably — usable output, so exit 0, with the caveat on
                // stderr where scripts that care can see it.
                if reply.status == "DEGRADED" {
                    eprintln!(
                        "client: warning: tenant is degraded — output is correct but the \
                         daemon's durable flush is suspended until its store heals"
                    );
                }
                let mut stdout = std::io::stdout().lock();
                if stdout.write_all(&reply.payload).is_err() {
                    return ExitCode::from(EXIT_IO);
                }
                ExitCode::from(EXIT_OK)
            } else {
                eprintln!("client: {}: {}", reply.status, reply.text());
                if reply.retriable() {
                    ExitCode::from(EXIT_RETRIABLE)
                } else {
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("client: {endpoint}: {e}");
            ExitCode::from(EXIT_IO)
        }
    }
}

/// `netchaos` — the seeded fault-injecting proxy from
/// `confanon_testkit::netchaos`, exposed as a subcommand so shell-level
/// smoke tests (ci.sh) can put a hostile wire in front of a live daemon
/// without writing Rust. Runs until SIGTERM, exits 0.
fn cmd_netchaos(args: &[String]) -> ExitCode {
    use confanon_testkit::netchaos::{ChaosProxy, Profile};

    let (opts, pos) = parse_opts(args);
    if let Some(extra) = pos.first() {
        eprintln!("netchaos: unexpected positional argument {extra:?}");
        return ExitCode::from(EXIT_USAGE);
    }
    let Some(upstream) = opts.get("upstream") else {
        eprintln!("netchaos: --upstream HOST:PORT is required (the daemon to shield)");
        return ExitCode::from(EXIT_USAGE);
    };
    let seed = match opts.get("seed").map(|v| v.parse::<u64>()) {
        None => 0,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("netchaos: --seed must be an unsigned integer");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let profile_name = opts.get("profile").map(String::as_str).unwrap_or("hostile");
    let Some(profile) = Profile::parse(profile_name) else {
        eprintln!("netchaos: unknown profile {profile_name:?} (hostile|lossless)");
        return ExitCode::from(EXIT_USAGE);
    };
    let mut proxy = match ChaosProxy::spawn(seed, profile, upstream) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("netchaos: cannot listen: {e}");
            return ExitCode::from(EXIT_BIND);
        }
    };
    if let Some(pf) = opts.get("port-file") {
        if let Err(e) = std::fs::write(pf, format!("{}\n", proxy.addr())) {
            eprintln!("netchaos: {pf}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    }
    confanon::core::signals::install_term_handler();
    eprintln!(
        "netchaos: proxying {} -> {upstream} (seed {seed}, profile {profile_name})",
        proxy.addr()
    );
    while !confanon::core::signals::term_requested() {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    proxy.stop();
    eprintln!("netchaos: stopped");
    ExitCode::from(EXIT_OK)
}

fn cmd_rules() -> ExitCode {
    println!("{:<5} {:<24} {:<14} description", "id", "name", "category");
    for (i, r) in ALL_RULES.iter().enumerate() {
        println!(
            "R{:02}   {:<24} {:<14} {}",
            i + 1,
            r.name,
            format!("{:?}", r.category),
            r.description.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
    ExitCode::SUCCESS
}
