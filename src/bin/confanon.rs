//! `confanon` — the command-line anonymizer.
//!
//! The workflow the paper's §7 clearinghouse envisions: a network owner
//! downloads the tool, anonymizes their configs locally under a secret
//! only they hold, audits the output, and uploads the result.
//!
//! ```text
//! confanon anonymize --secret <secret> [--compact] [--audit FILE] [--out-dir DIR] FILE...
//! confanon generate  [--networks N] [--routers M] [--seed S] --out-dir DIR
//! confanon validate  --pre-dir DIR --post-dir DIR
//! confanon scan      --record FILE.json FILE...
//! confanon rules
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::core::{AnonymizedConfig, Anonymizer, AnonymizerConfig, ALL_RULES};
use confanon::iosparse::Config;
use confanon::validate::{compare_designs, compare_properties, network_properties};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("anonymize") => cmd_anonymize(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("rules") => cmd_rules(),
        _ => {
            eprintln!(
                "usage: confanon <anonymize|batch|generate|validate|rules> [options]\n\
                 \n\
                 anonymize --secret <secret> [--compact] [--audit FILE] [--out-dir DIR] FILE...\n\
                 \u{20}   Anonymize config files under one owner secret. With --out-dir,\n\
                 \u{20}   writes <name>.anon alongside a leak-audit summary; otherwise\n\
                 \u{20}   prints to stdout.\n\
                 batch [--jobs N] [--secret <secret>] [--out-dir DIR] [--bench-json FILE] DIR\n\
                 \u{20}   Anonymize every .cfg under DIR (recursively, one keyed state)\n\
                 \u{20}   using N rewrite workers (0 = core count). Output is byte-identical\n\
                 \u{20}   at any worker count. Reports corpus throughput in tokens/sec.\n\
                 generate [--networks N] [--routers M] [--seed S] --out-dir DIR\n\
                 \u{20}   Emit a synthetic corpus (one directory per network).\n\
                 validate --pre-dir DIR --post-dir DIR\n\
                 \u{20}   Run both validation suites over matching file names.\n\
                 scan --record FILE.json FILE...\n\
                 \u{20}   Flag lines in anonymized files that still contain items from a\n\
                 \u{20}   leak record (JSON with asns/ips/words arrays).\n\
                 rules\n\
                 \u{20}   Print the 28 contextual rules."
            );
            ExitCode::from(2)
        }
    }
}

/// Minimal option parser: `--key value` flags, bare words are positionals.
fn parse_opts(args: &[String]) -> (BTreeMap<String, String>, Vec<String>) {
    let mut opts = BTreeMap::new();
    let mut pos = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // Boolean flags take no value when followed by another flag
            // or nothing.
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value && key != "compact" {
                opts.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                opts.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    (opts, pos)
}

fn cmd_anonymize(args: &[String]) -> ExitCode {
    let (opts, files) = parse_opts(args);
    let Some(secret) = opts.get("secret") else {
        eprintln!("anonymize: --secret is required (the owner's salt; keep it private)");
        return ExitCode::from(2);
    };
    if files.is_empty() {
        eprintln!("anonymize: no input files");
        return ExitCode::from(2);
    }
    let mut cfg = AnonymizerConfig::new(secret.clone().into_bytes());
    cfg.compact_regexps = opts.contains_key("compact");
    let mut anon = Anonymizer::new(cfg);
    let out_dir = opts.get("out-dir").map(PathBuf::from);
    if let Some(d) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(d) {
            eprintln!("anonymize: cannot create {}: {e}", d.display());
            return ExitCode::FAILURE;
        }
    }

    let mut outputs: Vec<(PathBuf, AnonymizedConfig)> = Vec::new();
    for f in &files {
        let path = Path::new(f);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("anonymize: {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        outputs.push((path.to_path_buf(), anon.anonymize_config(&text)));
    }

    // Owner-side mapping audit (§5's colleague workflow). As sensitive
    // as the originals: written only where explicitly requested.
    if let Some(audit_path) = opts.get("audit") {
        let json = anon.mapping_audit().to_json().to_string_pretty();
        if let Err(e) = std::fs::write(audit_path, json) {
            eprintln!("anonymize: write {audit_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("mapping audit written to {audit_path} (KEEP PRIVATE)");
    }

    // §6.1 self-audit: scan our own output for recorded survivors.
    let joined: String = outputs
        .iter()
        .map(|(_, o)| o.text.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let report = confanon::core::leak::LeakScanner::scan_excluding(
        anon.leak_record(),
        anon.emitted_exclusions(),
        &joined,
    );

    match out_dir {
        Some(dir) => {
            for (path, o) in &outputs {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().to_string())
                    .unwrap_or_else(|| "config".to_string());
                let target = dir.join(format!("{name}.anon"));
                if let Err(e) = std::fs::write(&target, &o.text) {
                    eprintln!("anonymize: write {}: {e}", target.display());
                    return ExitCode::FAILURE;
                }
            }
            eprintln!(
                "anonymized {} file(s); {} line(s) flagged by self-audit{}",
                outputs.len(),
                report.leaks.len(),
                if report.is_clean() { "" } else { " — REVIEW REQUIRED" }
            );
        }
        None => {
            for (_, o) in &outputs {
                print!("{}", o.text);
            }
            if !report.is_clean() {
                eprintln!("warning: {} line(s) flagged by self-audit", report.leaks.len());
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        for l in report.leaks.iter().take(10) {
            eprintln!("  flagged [{}]: {}", l.token, l.line);
        }
        ExitCode::FAILURE
    }
}

/// Collects every `.cfg` file under `dir`, recursively, in sorted order
/// (determinism: the corpus order defines the shared mapping state).
fn collect_cfg_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_cfg_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "cfg") {
            out.push(path);
        }
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let (opts, pos) = parse_opts(args);
    let Some(dir) = pos.first().map(PathBuf::from) else {
        eprintln!("batch: a corpus directory is required");
        return ExitCode::from(2);
    };
    let jobs: usize = match opts.get("jobs").map(|j| j.parse()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("batch: --jobs must be a non-negative integer");
            return ExitCode::from(2);
        }
    };
    let secret = match opts.get("secret") {
        Some(s) => s.clone(),
        None => {
            eprintln!(
                "batch: no --secret given; using a well-known default — \
                 output is NOT anonymous, use only for benchmarking"
            );
            "smoke-bench-secret".to_string()
        }
    };

    let mut paths = Vec::new();
    if let Err(e) = collect_cfg_files(&dir, &mut paths) {
        eprintln!("batch: {e}");
        return ExitCode::FAILURE;
    }
    if paths.is_empty() {
        eprintln!("batch: no .cfg files under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut files: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for p in &paths {
        let rel = p.strip_prefix(&dir).unwrap_or(p).to_string_lossy().to_string();
        match std::fs::read_to_string(p) {
            Ok(t) => files.push((rel, t)),
            Err(e) => {
                eprintln!("batch: {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let start = std::time::Instant::now();
    let run = confanon::workflow::anonymize_corpus(&files, secret.as_bytes(), jobs);
    let elapsed = start.elapsed();
    let report = confanon::workflow::audit_corpus(&run);

    if let Some(out_dir) = opts.get("out-dir").map(PathBuf::from) {
        for o in &run.report.outputs {
            let target = out_dir.join(format!("{}.anon", o.name));
            if let Some(parent) = target.parent() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("batch: cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
            if let Err(e) = std::fs::write(&target, &o.text) {
                eprintln!("batch: write {}: {e}", target.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let words = run.report.totals.words_total;
    let secs = elapsed.as_secs_f64().max(1e-9);
    let tokens_per_sec = words as f64 / secs;
    eprintln!(
        "anonymized {} file(s) ({} line(s), {} token(s)) with {} job(s) in {:.3}s — {:.0} tokens/sec; \
         {} line(s) flagged by self-audit",
        run.report.outputs.len(),
        run.report.totals.lines_total,
        words,
        run.report.jobs,
        secs,
        tokens_per_sec,
        report.leaks.len(),
    );

    if let Some(json_path) = opts.get("bench-json") {
        let json = confanon_testkit::json::Json::obj()
            .with("suite", "pipeline")
            .with("files", run.report.outputs.len() as u64)
            .with("lines", run.report.totals.lines_total)
            .with("words", words)
            .with("jobs", run.report.jobs as u64)
            .with("elapsed_ns", elapsed.as_nanos() as f64)
            .with("tokens_per_sec", tokens_per_sec);
        if let Err(e) = std::fs::write(json_path, json.to_string_pretty()) {
            eprintln!("batch: write {json_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("throughput written to {json_path}");
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        for l in report.leaks.iter().take(10) {
            eprintln!("  flagged [{}]: {}", l.token, l.line);
        }
        ExitCode::FAILURE
    }
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let (opts, _) = parse_opts(args);
    let Some(out_dir) = opts.get("out-dir").map(PathBuf::from) else {
        eprintln!("generate: --out-dir is required");
        return ExitCode::from(2);
    };
    let spec = DatasetSpec {
        seed: opts.get("seed").and_then(|s| s.parse().ok()).unwrap_or(2004),
        networks: opts.get("networks").and_then(|s| s.parse().ok()).unwrap_or(4),
        mean_routers: opts.get("routers").and_then(|s| s.parse().ok()).unwrap_or(8),
        backbone_fraction: 0.35,
    };
    let ds = generate_dataset(&spec);
    for net in &ds.networks {
        let dir = out_dir.join(&net.name);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("generate: {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for r in &net.routers {
            let file = dir.join(format!("{}.cfg", r.hostname));
            if let Err(e) = std::fs::write(&file, &r.config) {
                eprintln!("generate: {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "generated {} network(s), {} router(s), {} line(s) into {}",
        ds.networks.len(),
        ds.total_routers(),
        ds.total_lines(),
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let (opts, _) = parse_opts(args);
    let (Some(pre), Some(post)) = (opts.get("pre-dir"), opts.get("post-dir")) else {
        eprintln!("validate: --pre-dir and --post-dir are required");
        return ExitCode::from(2);
    };
    let load = |dir: &str| -> Result<Vec<(String, Config)>, String> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{dir}: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|p| {
                let name = p.file_name().map(|n| n.to_string_lossy().to_string());
                let name = name.unwrap_or_default().replace(".anon", "");
                std::fs::read_to_string(&p)
                    .map(|t| (name, Config::parse(&t)))
                    .map_err(|e| format!("{}: {e}", p.display()))
            })
            .collect()
    };
    let (pre_cfgs, post_cfgs) = match (load(pre), load(post)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("validate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pre_names: Vec<&String> = pre_cfgs.iter().map(|(n, _)| n).collect();
    let post_names: Vec<&String> = post_cfgs.iter().map(|(n, _)| n).collect();
    if pre_names != post_names {
        eprintln!("validate: file sets differ: {pre_names:?} vs {post_names:?}");
        return ExitCode::FAILURE;
    }
    let pre_c: Vec<Config> = pre_cfgs.into_iter().map(|(_, c)| c).collect();
    let post_c: Vec<Config> = post_cfgs.into_iter().map(|(_, c)| c).collect();

    let s1 = compare_properties(&network_properties(&pre_c), &network_properties(&post_c));
    let s2 = compare_designs(&pre_c, &post_c);
    println!(
        "suite1: {}{}",
        if s1.passed() { "PASS" } else { "FAIL" },
        if s1.passed() {
            String::new()
        } else {
            format!(" (differs: {:?})", s1.differing_fields)
        }
    );
    println!(
        "suite2: {}{}",
        if s2.passed() { "PASS" } else { "FAIL" },
        if s2.passed() {
            String::new()
        } else {
            format!(" (routers: {:?})", s2.differing_routers)
        }
    );
    if s1.passed() && s2.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_scan(args: &[String]) -> ExitCode {
    let (opts, files) = parse_opts(args);
    let Some(record_path) = opts.get("record") else {
        eprintln!("scan: --record FILE.json is required");
        return ExitCode::from(2);
    };
    let record: confanon::core::leak::LeakRecord = match std::fs::read_to_string(record_path)
        .map_err(|e| e.to_string())
        .and_then(|t| confanon::core::leak::LeakRecord::from_json_str(&t))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan: {record_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scanner = confanon::core::leak::LeakScanner::new(&record);
    let mut total = 0usize;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scan: {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = scanner.scan(&text);
        for l in &report.leaks {
            println!("{f}:{}: [{}] {}", l.line_no + 1, l.token, l.line);
        }
        total += report.leaks.len();
    }
    eprintln!("{total} line(s) flagged across {} file(s)", files.len());
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_rules() -> ExitCode {
    println!("{:<5} {:<24} {:<14} description", "id", "name", "category");
    for (i, r) in ALL_RULES.iter().enumerate() {
        println!(
            "R{:02}   {:<24} {:<14} {}",
            i + 1,
            r.name,
            format!("{:?}", r.category),
            r.description.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
    ExitCode::SUCCESS
}
