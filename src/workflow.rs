//! High-level workflows: anonymize a whole network and audit the result.
//!
//! These are the flows a network owner runs (paper §7's clearinghouse
//! vision): anonymize every router of a network with one keyed
//! [`Anonymizer`], scan the output against ground truth, and run both
//! validation suites pre vs post.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use confanon_confgen::{generate_decoy_routers, Network};
use confanon_core::leak::{LeakRecord, LeakReport, LeakScanner};
use confanon_core::{
    AnonError, AnonState, AnonymizationStats, Anonymizer, AnonymizerConfig, BatchFailure,
    BatchInput, BatchOutput, BatchPipeline, BatchReport, FileDiscovery, IpScheme, Publisher,
    RunManifest, ALL_RULES,
};
use confanon_crypto::Sha1;
use confanon_design::RoutingDesign;
use confanon_iosparse::Config;
use confanon_obs::{Clock, ObsShard};
use confanon_redteam::{build_risk_report, run_suite, AttackSuite, AuditOptions, TradeoffRow};
use confanon_testkit::json::Json;
use confanon_validate::{compare_designs, compare_properties, Suite1Report, Suite2Report};

/// Everything produced by anonymizing one network.
pub struct NetworkRun {
    /// Anonymized config text per router (same order as the input).
    pub anonymized: Vec<String>,
    /// The anonymizer, retained for audits (maps, records, exclusions).
    pub anonymizer: Anonymizer,
}

/// Anonymizes every router of `net` under one owner secret.
pub fn anonymize_network(net: &Network, owner_secret: &[u8]) -> NetworkRun {
    let mut anonymizer = Anonymizer::new(AnonymizerConfig::new(owner_secret.to_vec()));
    let anonymized = net
        .routers
        .iter()
        .map(|r| anonymizer.anonymize_config(&r.config).text)
        .collect();
    NetworkRun {
        anonymized,
        anonymizer,
    }
}

/// Builds a [`LeakRecord`] from the generator's ground truth — the
/// operator's independent knowledge of what must not survive.
pub fn ground_truth_record(net: &Network) -> LeakRecord {
    let (asns, ips, words) = net.ground_truth.record_tuple();
    LeakRecord { asns, ips, words }
}

/// Scans a network's anonymized output against ground truth, excluding
/// the values the anonymizer legitimately emitted.
pub fn audit_network(net: &Network, run: &NetworkRun) -> LeakReport {
    let record = ground_truth_record(net);
    let text = run.anonymized.join("\n");
    LeakScanner::scan_excluding(&record, run.anonymizer.emitted_exclusions(), &text)
}

/// Runs validation suite 1 (independent characteristics) pre vs post.
pub fn run_suite1(net: &Network, run: &NetworkRun) -> Suite1Report {
    let pre: Vec<Config> = net.routers.iter().map(|r| Config::parse(&r.config)).collect();
    let post: Vec<Config> = run.anonymized.iter().map(|t| Config::parse(t)).collect();
    compare_properties(
        &confanon_validate::network_properties(&pre),
        &confanon_validate::network_properties(&post),
    )
}

/// Runs validation suite 2 (routing-design equality) pre vs post.
pub fn run_suite2(net: &Network, run: &NetworkRun) -> Suite2Report {
    let pre: Vec<Config> = net.routers.iter().map(|r| Config::parse(&r.config)).collect();
    let post: Vec<Config> = run.anonymized.iter().map(|t| Config::parse(t)).collect();
    compare_designs(&pre, &post)
}

/// Extracts the post-anonymization routing design (for fingerprinting).
pub fn post_design(run: &NetworkRun) -> RoutingDesign {
    let post: Vec<Config> = run.anonymized.iter().map(|t| Config::parse(t)).collect();
    confanon_design::extract_design(&post)
}

/// Everything produced by anonymizing one corpus of config files.
pub struct CorpusRun {
    /// Per-file outputs (input order) plus aggregate counters.
    pub report: BatchReport,
    /// The warmed anonymizer, retained for audits.
    pub anonymizer: Anonymizer,
}

/// Anonymizes a corpus of `(name, text)` config files under one owner
/// secret with `jobs` rewrite workers (`0` = logical core count).
///
/// All files share one keyed mapping state (§3.2 consistency across the
/// corpus) yet the emit work parallelizes: a sequential discovery pass
/// warms every mapping, then workers re-emit files concurrently from
/// clones of the warmed state. The output is byte-identical to a
/// sequential run for every `jobs` value — see
/// [`confanon_core::batch::BatchPipeline`].
pub fn anonymize_corpus(files: &[(String, String)], owner_secret: &[u8], jobs: usize) -> CorpusRun {
    let inputs: Vec<BatchInput> = files
        .iter()
        .map(|(name, text)| BatchInput {
            name: name.clone(),
            text: text.clone(),
        })
        .collect();
    let mut pipeline = BatchPipeline::new(AnonymizerConfig::new(owner_secret.to_vec()), jobs);
    let report = pipeline.run(&inputs);
    CorpusRun {
        report,
        anonymizer: pipeline.into_anonymizer(),
    }
}

/// Scans a corpus run's output against the anonymizer's own leak record
/// (the §6.1 self-audit), excluding legitimately emitted images.
pub fn audit_corpus(run: &CorpusRun) -> LeakReport {
    let text: Vec<&str> = run.report.outputs.iter().map(|o| o.text.as_str()).collect();
    LeakScanner::scan_excluding(
        run.anonymizer.leak_record(),
        run.anonymizer.emitted_exclusions(),
        &text.join("\n"),
    )
}

/// One output the §6.1 gate refused to release: residual recorded
/// identifiers survived anonymization, so the bytes must not reach the
/// output directory.
pub struct QuarantinedFile {
    /// The withheld output (name, text, stats).
    pub output: BatchOutput,
    /// The residual hits that triggered the gate.
    pub report: LeakReport,
}

/// Result of a fail-closed corpus run: every emitted output has passed
/// the leak gate; everything else is accounted for as a quarantine or a
/// contained per-file failure.
pub struct GatedCorpusRun {
    /// Outputs that passed the gate, in input order.
    pub clean: Vec<BatchOutput>,
    /// Outputs withheld by the gate, in input order.
    pub quarantined: Vec<QuarantinedFile>,
    /// Files whose processing panicked (contained), in input order.
    pub failures: Vec<BatchFailure>,
    /// Files whose rewrite was skipped because `--resume` verified
    /// their released bytes on disk, in input order.
    pub skipped: Vec<String>,
    /// Per-file discovery contributions (stats, prefilter path counts),
    /// keyed by input name — what a `--state` run persists per file so
    /// a later warm run can skip unchanged files entirely.
    pub discoveries: BTreeMap<String, FileDiscovery>,
    /// Aggregate counters across all emitted-or-quarantined outputs.
    pub totals: AnonymizationStats,
    /// Worker threads used for the rewrite pass.
    pub jobs: usize,
    /// The warmed anonymizer, retained for audits.
    pub anonymizer: Anonymizer,
    /// Observability data recorded across discovery, rewrite, and the
    /// leak gate (merged worker shards).
    pub obs: ObsShard,
}

impl GatedCorpusRun {
    /// Total flagged lines across all quarantined files.
    pub fn leak_count(&self) -> usize {
        self.quarantined.iter().map(|q| q.report.leaks.len()).sum()
    }

    /// The machine-readable `leak_report.json` document: one object per
    /// quarantined file with its flagged lines, plus the contained
    /// per-file failures and summary counts. Round-trips through
    /// [`Json::parse`].
    pub fn leak_report_json(&self) -> Json {
        let quarantined: Vec<Json> = self
            .quarantined
            .iter()
            .map(|q| {
                let leaks: Vec<Json> = q
                    .report
                    .leaks
                    .iter()
                    .map(|l| {
                        Json::obj()
                            .with("line_no", l.line_no as u64)
                            .with("token", l.token.as_str())
                            .with("line", l.line.as_str())
                    })
                    .collect();
                Json::obj()
                    .with("name", q.output.name.as_str())
                    .with("leaks", Json::Arr(leaks))
            })
            .collect();
        let failures: Vec<Json> = self
            .failures
            .iter()
            .map(|f| {
                Json::obj()
                    .with("name", f.name.as_str())
                    .with("phase", f.phase.name())
                    .with("cause", f.cause.as_str())
            })
            .collect();
        Json::obj()
            .with("schema", "confanon-leak-report-v1")
            .with("clean_files", self.clean.len() as u64)
            .with("quarantined_files", self.quarantined.len() as u64)
            .with("panic_contained_files", self.failures.len() as u64)
            .with("total_leaks", self.leak_count() as u64)
            .with("quarantined", Json::Arr(quarantined))
            .with("failures", Json::Arr(failures))
    }

    /// Total input files this run accounted for, in any state.
    pub fn files_total(&self) -> usize {
        self.clean.len() + self.skipped.len() + self.quarantined.len() + self.failures.len()
    }

    /// The deterministic metrics section: byte-identical for a given
    /// corpus and config across any `--jobs` value AND across a resumed
    /// vs. one-shot run.
    ///
    /// Everything here derives from the sequential discovery pass, which
    /// always walks the *whole* corpus in input order (a resume skip set
    /// only suppresses re-emission): aggregate anonymization counters,
    /// per-rule fire counts, prefix-trie node counts, and the
    /// discovery-side counters/histograms. Corpus accounting uses
    /// `released_or_verified` (clean + resume-verified) rather than the
    /// two parts separately, because the split depends on where a prior
    /// run crashed. Rewrite/gate/publish counters, spans, and all
    /// wall-clock data are excluded — they belong in the timing section.
    pub fn metrics_deterministic_json(&self) -> Json {
        let mut rules = Json::obj();
        for (name, fires) in self.anonymizer.total_stats().rule_fires_complete() {
            rules.set(name, fires);
        }
        let mut by_category = Json::obj();
        for (cat, fires) in self.anonymizer.total_stats().rule_fires_by_category() {
            by_category.set(cat, fires);
        }
        let (trie4, trie6) = self.anonymizer.trie_node_counts();
        Json::obj()
            .with(
                "corpus",
                Json::obj()
                    .with("files_total", self.files_total() as u64)
                    .with(
                        "released_or_verified",
                        (self.clean.len() + self.skipped.len()) as u64,
                    )
                    .with("quarantined", self.quarantined.len() as u64)
                    .with("failed", self.failures.len() as u64)
                    .with("leaks_gated", self.leak_count() as u64),
            )
            .with("anonymization", self.anonymizer.total_stats().to_json())
            .with(
                "rules",
                Json::obj()
                    .with(
                        "fired_total",
                        self.anonymizer.total_stats().rules_fired_total(),
                    )
                    .with("by_category", by_category)
                    .with("by_rule", rules),
            )
            .with(
                "ipanon",
                Json::obj()
                    .with("trie4_nodes", trie4 as u64)
                    .with("trie6_nodes", trie6 as u64),
            )
            .with(
                "counters",
                counters_with_prefixes(
                    &self.obs,
                    &["phase.discover.", "phase.read.", "phase.sanitize."],
                ),
            )
            .with("histograms", self.obs.hists_json())
    }

    /// The timing metrics section: run-shape data (worker count,
    /// rewrite/gate counters, span aggregates) that legitimately varies
    /// with `--jobs`, `--resume`, and the wall clock. Callers append
    /// durability and elapsed-time fields before serializing.
    pub fn metrics_timing_json(&self) -> Json {
        Json::obj()
            .with("jobs", self.jobs as u64)
            .with(
                "counters",
                counters_with_prefixes(
                    &self.obs,
                    // `discovery.` (unlike `phase.discover.`) holds the
                    // shard-layout-dependent values: shard count and
                    // prefilter cache hits vary with `--jobs`.
                    &["phase.rewrite.", "phase.publish.", "gate.", "discovery."],
                ),
            )
            .with("spans", self.obs.span_summary_json())
    }
}

/// Counters whose keys match any of `prefixes`, as a key-ordered JSON
/// object (BTreeMap iteration order, so serialization is stable).
fn counters_with_prefixes(obs: &ObsShard, prefixes: &[&str]) -> Json {
    let mut out = Json::obj();
    for (k, v) in obs.counters() {
        if prefixes.iter().any(|p| k.starts_with(p)) {
            out.set(k, *v);
        }
    }
    out
}

/// Anonymizes a corpus fail-closed: after the batch pipeline emits, every
/// output is individually scanned against the anonymizer's own leak
/// record (§6.1 made mandatory instead of advisory). Outputs with
/// residual hits are quarantined — returned separately, never mixed with
/// the releasable set. Takes a full [`AnonymizerConfig`] so ablation
/// experiments (`disabled_rules`) flow through the same gate the
/// production path uses.
pub fn anonymize_corpus_gated(
    files: &[(String, String)],
    cfg: AnonymizerConfig,
    jobs: usize,
) -> GatedCorpusRun {
    anonymize_corpus_gated_skipping(files, cfg, jobs, &BTreeSet::new())
}

/// [`anonymize_corpus_gated`] with a resume skip set: files named in
/// `skip` still participate in the discovery pass (the shared mapping
/// state is corpus-order dependent) but are neither re-emitted nor
/// re-scanned — their released bytes were already digest-verified on
/// disk by [`Publisher::resume`].
pub fn anonymize_corpus_gated_skipping(
    files: &[(String, String)],
    cfg: AnonymizerConfig,
    jobs: usize,
    skip: &BTreeSet<String>,
) -> GatedCorpusRun {
    anonymize_corpus_gated_clocked(files, cfg, jobs, skip, Clock::new())
}

/// [`anonymize_corpus_gated_skipping`] on an explicit [`Clock`]. The
/// clock is both the run's span timeline and the observability switch:
/// [`Clock::disabled`] strips every recording to a no-op, which is how
/// the overhead benchmark measures the instrumented-vs-stripped cost.
pub fn anonymize_corpus_gated_clocked(
    files: &[(String, String)],
    cfg: AnonymizerConfig,
    jobs: usize,
    skip: &BTreeSet<String>,
    clock: Clock,
) -> GatedCorpusRun {
    let pipeline = BatchPipeline::new(cfg, jobs).with_clock(clock);
    gated_run_on(pipeline, files, skip, &BTreeMap::new())
}

/// A warm start for [`anonymize_corpus_gated_stateful`]: the loaded
/// state document, the path it came from (for error attribution), and
/// the per-file discoveries whose content watermark matched — those
/// files are not scanned again.
pub struct WarmStart<'a> {
    /// Loaded and owner-checked `confanon-state-v1` document.
    pub state: &'a AnonState,
    /// Path the state was loaded from, used in error messages.
    pub state_file: &'a str,
    /// Watermark-matched files and their stored discovery contributions.
    pub prewarmed: &'a BTreeMap<String, FileDiscovery>,
}

/// [`anonymize_corpus_gated_clocked`] warm-started from a persisted
/// anonymizer state (`confanon batch --state DIR`): the state's
/// identifier journal is replayed into the fresh pipeline *before*
/// discovery (restoring every previously-issued mapping), and files in
/// [`WarmStart::prewarmed`] — whose content watermark matched the state
/// — are not scanned at all; their stored per-file contributions are
/// absorbed instead so the deterministic metrics match a cold run.
/// Returns the run plus the restored (v4, v6) trie node counts. Fails
/// only if the state's journal does not rebuild the tries it claims
/// ([`AnonError::StateInvalid`]); owner/version validation happens at
/// load time.
pub fn anonymize_corpus_gated_stateful(
    files: &[(String, String)],
    cfg: AnonymizerConfig,
    jobs: usize,
    skip: &BTreeSet<String>,
    clock: Clock,
    warm: WarmStart<'_>,
) -> Result<(GatedCorpusRun, (u64, u64)), AnonError> {
    let mut pipeline = BatchPipeline::new(cfg, jobs).with_clock(clock);
    let restored = warm
        .state
        .restore_into(warm.state_file, pipeline.anonymizer_mut())?;
    Ok((gated_run_on(pipeline, files, skip, warm.prewarmed), restored))
}

/// The shared gated-run body: batch pipeline (with optional prewarmed
/// skip map), then the §6.1 per-output leak gate.
fn gated_run_on(
    mut pipeline: BatchPipeline,
    files: &[(String, String)],
    skip: &BTreeSet<String>,
    prewarmed: &BTreeMap<String, FileDiscovery>,
) -> GatedCorpusRun {
    let inputs: Vec<BatchInput> = files
        .iter()
        .map(|(name, text)| BatchInput {
            name: name.clone(),
            text: text.clone(),
        })
        .collect();
    let report = pipeline.run_incremental(&inputs, skip, prewarmed);
    let mut obs = report.obs;
    let anonymizer = pipeline.into_anonymizer();

    let mut clean = Vec::new();
    let mut quarantined = Vec::new();
    let t_gate = obs.span_start();
    // One scanner for the whole corpus: the hash views over the leak
    // record and the exclusion set are built once, not per file.
    let scanner =
        LeakScanner::with_exclusions(anonymizer.leak_record(), anonymizer.emitted_exclusions());
    for output in report.outputs {
        let t_file = obs.span_start();
        let scan = scanner.scan(&output.text);
        obs.span_end(&output.name, "leak-scan", 0, t_file);
        if scan.is_clean() {
            clean.push(output);
        } else {
            quarantined.push(QuarantinedFile {
                output,
                report: scan,
            });
        }
    }
    obs.span_end("leak-scan", "phase", 0, t_gate);
    obs.count("gate.clean", clean.len() as u64);
    obs.count("gate.quarantined", quarantined.len() as u64);
    GatedCorpusRun {
        clean,
        quarantined,
        failures: report.failures,
        skipped: report.skipped,
        discoveries: report.discoveries,
        totals: report.totals,
        jobs: report.jobs,
        anonymizer,
        obs,
    }
}

/// What a journaled publish step released, in summary form.
pub struct PublishSummary {
    /// Files released this run (skipped files are not re-released).
    pub released: usize,
    /// Files whose bytes were diverted to quarantine.
    pub quarantined: usize,
    /// Panic-contained files journaled as `failed`.
    pub failed: usize,
}

/// Publishes a gated run through the write-ahead journal.
///
/// Every state change is journaled in `run_manifest.json` *before* the
/// corresponding bytes appear, in a deterministic order (failures
/// first, then released outputs in corpus order, then quarantined
/// outputs and the leak report) — which is what makes the
/// `CONFANON_CRASH_AFTER` crash points reproducible at any `--jobs`
/// value. Quarantined bytes and `leak_report.json` go to
/// `quarantine_dir` when given; pass `None` only when the gate is known
/// clean and no quarantine artifacts were requested.
pub fn publish_gated_run(
    publisher: &mut Publisher<'_>,
    run: &GatedCorpusRun,
    quarantine_dir: Option<&Path>,
) -> Result<PublishSummary, AnonError> {
    let failed: Vec<String> = run.failures.iter().map(|f| f.name.clone()).collect();
    publisher.mark_failed(&failed)?;
    for o in &run.clean {
        // SIGTERM drains, it doesn't kill: the flag is polled between
        // atomic writes, so the in-flight rename always completes and
        // the journal stays consistent. The remaining files are exactly
        // what `--resume` will find missing.
        if confanon_core::signals::term_requested() {
            return Err(AnonError::ResumableInterrupted {
                path: o.name.clone(),
                message: "SIGTERM received; stopping after the last completed atomic write"
                    .to_string(),
            });
        }
        publisher.release(&o.name, o.text.as_bytes())?;
    }
    if let Some(qdir) = quarantine_dir {
        for q in &run.quarantined {
            publisher.quarantine(qdir, &q.output.name, q.output.text.as_bytes())?;
        }
        publisher.write_report(
            &qdir.join("leak_report.json"),
            run.leak_report_json().to_string_pretty().as_bytes(),
        )?;
    }
    Ok(PublishSummary {
        released: run.clean.len(),
        quarantined: run.quarantined.len(),
        failed: failed.len(),
    })
}

/// Domain separator for per-network decoy seeds.
const DECOY_SEED_DOMAIN: &[u8] = b"confanon-decoy-seed\x00";

/// The rules `confanon audit --risk` ablates by default for the
/// tradeoff table: the two ASN rules whose loss the known-plaintext
/// attack prices directly.
pub const DEFAULT_SWEEP_RULES: [&str; 2] = ["router-bgp-asn", "neighbor-remote-as"];

/// Injects `per_network` NetCloak-style decoy routers into each
/// top-level network directory of `files`, returning the injected
/// names. Decoys are appended at the *end* of the corpus vector, so the
/// shared mapping state issued to every real file is untouched
/// (append-growth equivalence — the invariant `tests/incremental.rs`
/// pins) and real outputs stay byte-identical to a decoy-free run.
///
/// Each network's decoy set is a pure function of `(owner secret,
/// network name, per_network)` — seeded through the secret's manifest
/// fingerprint — so `--resume` and `--state` re-runs regenerate an
/// identical corpus. Names collide into the `zz-decoy-<i>.cfg` slot at
/// the end of each directory's sort order; a corpus that already holds
/// a file by that name keeps its own file (no decoy is injected there).
pub fn inject_decoys(
    files: &mut Vec<(String, String)>,
    secret: &[u8],
    per_network: usize,
) -> BTreeSet<String> {
    let mut injected = BTreeSet::new();
    if per_network == 0 {
        return injected;
    }
    let mut groups: Vec<String> = Vec::new();
    for (name, _) in files.iter() {
        let g = match name.split_once('/') {
            Some((head, _)) => head.to_string(),
            None => String::new(),
        };
        if !groups.contains(&g) {
            groups.push(g);
        }
    }
    let existing: BTreeSet<String> = files.iter().map(|(n, _)| n.clone()).collect();
    let fingerprint = RunManifest::fingerprint(secret);
    for group in groups {
        let mut h = Sha1::new();
        h.update(DECOY_SEED_DOMAIN);
        h.update(fingerprint.as_bytes());
        h.update(group.as_bytes());
        let digest = h.finalize();
        let mut seed_bytes = [0u8; 8];
        seed_bytes.copy_from_slice(&digest[..8]);
        let seed = u64::from_be_bytes(seed_bytes);
        for (i, router) in generate_decoy_routers(seed, per_network).iter().enumerate() {
            let name = if group.is_empty() {
                format!("zz-decoy-{i}.cfg")
            } else {
                format!("{group}/zz-decoy-{i}.cfg")
            };
            if existing.contains(&name) {
                continue;
            }
            injected.insert(name.clone());
            files.push((name, router.config.clone()));
        }
    }
    injected
}

/// Inputs of one risk–utility audit (`confanon audit --risk`).
pub struct RiskAuditInput<'a> {
    /// The original (pre-anonymization) corpus, sanitized, in corpus
    /// order.
    pub pre: &'a [(String, String)],
    /// The released corpus under audit: `(corpus name, released text)`.
    pub post: &'a [(String, String)],
    /// Names in `post` flagged as decoys by the run manifest.
    pub decoys: &'a BTreeSet<String>,
    /// The owner secret the released corpus was anonymized under.
    pub secret: &'a [u8],
    /// Worker threads for the in-memory sweep re-anonymizations.
    pub jobs: usize,
    /// Attack battery knobs.
    pub opts: AuditOptions,
    /// Rule names to ablate, one tradeoff row each.
    pub sweep_rules: &'a [String],
    /// Decoys per network for the synthetic decoy row (0 = no row).
    pub decoy_sweep: usize,
}

/// Outcome of a risk–utility audit: the baseline battery, the sweep
/// rows, and the assembled `confanon-risk-v1` document.
pub struct RiskAudit {
    /// Battery outcome against the actual released bytes.
    pub baseline: AttackSuite,
    /// Sweep rows (rule ablations, scramble, decoys), in table order.
    pub rows: Vec<TradeoffRow>,
    /// The full report document.
    pub report: Json,
}

/// The hypothetical release of a re-anonymized corpus: every output the
/// pipeline produced, in corpus order, *including* gate-quarantined
/// bytes — a sweep row prices "what if these bytes shipped", which is
/// exactly the release the leak gate exists to refuse.
fn hypothetical_release(files: &[(String, String)], run: &GatedCorpusRun) -> Vec<(String, String)> {
    let mut by_name: BTreeMap<&str, &str> = BTreeMap::new();
    for o in &run.clean {
        by_name.insert(o.name.as_str(), o.text.as_str());
    }
    for q in &run.quarantined {
        by_name.insert(q.output.name.as_str(), q.output.text.as_str());
    }
    files
        .iter()
        .filter_map(|(name, _)| {
            by_name
                .get(name.as_str())
                .map(|text| (name.clone(), text.to_string()))
        })
        .collect()
}

/// Runs the full risk–utility audit: the attack battery against the
/// actual released corpus (the headline numbers), then one tradeoff row
/// per anonymization variant — each sweep re-anonymizes the original
/// corpus *in memory* with the variant's config and attacks the
/// hypothetical release:
///
/// * one row per name in `sweep_rules`, anonymized with that rule
///   disabled (unknown names are skipped — hostile reports must not
///   panic the audit);
/// * a `scramble` row under [`IpScheme::Scramble`], pricing what
///   structure destruction buys in risk and costs in utility;
/// * when `decoy_sweep > 0`, a `decoys:N` row with [`inject_decoys`]
///   chaff added before anonymization.
///
/// Pure of I/O and wall-clock, so the returned report is byte-identical
/// across runs and `--jobs` values.
pub fn risk_audit(input: &RiskAuditInput<'_>) -> RiskAudit {
    let baseline = run_suite(input.pre, input.post, input.decoys, input.secret, &input.opts);

    let mut rows = Vec::new();
    let no_decoys = BTreeSet::new();
    for rule_name in input.sweep_rules {
        let Some(rule) = ALL_RULES.iter().find(|r| r.name == *rule_name) else {
            continue;
        };
        let cfg = AnonymizerConfig::new(input.secret.to_vec()).without_rule(rule.id);
        let run = anonymize_corpus_gated(input.pre, cfg, input.jobs);
        let release = hypothetical_release(input.pre, &run);
        rows.push(TradeoffRow {
            label: format!("disable:{rule_name}"),
            disabled_rules: vec![rule_name.clone()],
            suite: run_suite(input.pre, &release, &no_decoys, input.secret, &input.opts),
        });
    }

    let mut scramble_cfg = AnonymizerConfig::new(input.secret.to_vec());
    scramble_cfg.ip_scheme = IpScheme::Scramble;
    let run = anonymize_corpus_gated(input.pre, scramble_cfg, input.jobs);
    let release = hypothetical_release(input.pre, &run);
    rows.push(TradeoffRow {
        label: "scramble".to_string(),
        disabled_rules: Vec::new(),
        suite: run_suite(input.pre, &release, &no_decoys, input.secret, &input.opts),
    });

    if input.decoy_sweep > 0 {
        let mut chaffed = input.pre.to_vec();
        let decoys = inject_decoys(&mut chaffed, input.secret, input.decoy_sweep);
        let run = anonymize_corpus_gated(&chaffed, AnonymizerConfig::new(input.secret.to_vec()), input.jobs);
        let release = hypothetical_release(&chaffed, &run);
        rows.push(TradeoffRow {
            label: format!("decoys:{}", input.decoy_sweep),
            disabled_rules: Vec::new(),
            suite: run_suite(input.pre, &release, &decoys, input.secret, &input.opts),
        });
    }

    let report = build_risk_report(&input.opts, &baseline, &rows);
    RiskAudit {
        baseline,
        rows,
        report,
    }
}

/// Anonymizes every network of a dataset in parallel (one thread per
/// network, capped at the logical core count).
///
/// Parallelism is *across* networks: each network must be mapped by one
/// consistent keyed state (§3.2), so the trie is never shared — the
/// paper's observation that Xu's stateless scheme parallelizes trivially
/// while the table scheme does not applies *within* a network, and the
/// natural unit of work at clearinghouse scale is the network anyway.
/// Returns per-network results in input order.
pub fn anonymize_dataset_parallel(
    networks: &[Network],
    secret_for: impl Fn(usize) -> Vec<u8> + Sync,
) -> Vec<NetworkRun> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut results: Vec<Option<NetworkRun>> = Vec::new();
    results.resize_with(networks.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(networks.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= networks.len() {
                    break;
                }
                let run = anonymize_network(&networks[i], &secret_for(i));
                // Slot writes are index-disjoint, so a sibling's panic
                // leaves no broken invariant behind the lock: recover it.
                let mut guard = results_mutex.lock().unwrap_or_else(|e| e.into_inner());
                guard[i] = Some(run);
            });
        }
    });

    results.into_iter().flatten().collect()
}
