//! # confanon — Structure Preserving Anonymization of Router Configuration Data
//!
//! A full reproduction of Maltz et al., IMC 2004: an automated anonymizer
//! for router configuration files that severs every link to the owning
//! network's identity while preserving the structure — subnet
//! containment, referential integrity, classful addressing, and the
//! languages of policy regexps — that makes configs valuable to
//! researchers.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the anonymization pipeline (pass-list, 28 rules, salted
//!   SHA-1 hashing, leak recording, the §6.1 iteration harness);
//! * [`ipanon`] — prefix-preserving IP anonymization (extended `-a50`
//!   trie plus the Crypto-PAn-style baseline);
//! * [`asnanon`] — ASN/community permutations and regexp rewriting;
//! * [`regexlang`] — the regexp engine (NFA/DFA/minimization/synthesis);
//! * [`iosparse`] — tolerant tokenizer and config model;
//! * [`netprim`] — IPv4 primitives;
//! * [`crypto`] — SHA-1, HMAC, PRF, Feistel permutation;
//! * [`confgen`] — the synthetic dataset generator (dataset substitution);
//! * [`design`] — routing-design extraction;
//! * [`validate`] — the two validation suites and fingerprint studies;
//! * [`obs`] — the deterministic observability layer (spans, counters,
//!   histograms, `metrics.json`, Chrome trace export);
//! * [`redteam`] — the seeded de-anonymization red team and the
//!   `confanon-risk-v1` risk–utility report behind `confanon audit
//!   --risk`.
//!
//! ## Quickstart
//!
//! ```
//! use confanon::core::{Anonymizer, AnonymizerConfig};
//!
//! let mut anon = Anonymizer::new(AnonymizerConfig::new(b"owner-secret".to_vec()));
//! let out = anon.anonymize_config(confanon::core::figure1::FIGURE1_CONFIG);
//! assert!(!out.text.contains("12.126.236.17"));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

// Fail-closed: library code must never abort on input-derived data.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod workflow;

pub use confanon_asnanon as asnanon;
pub use confanon_confgen as confgen;
pub use confanon_core as core;
pub use confanon_crypto as crypto;
pub use confanon_design as design;
pub use confanon_iosparse as iosparse;
pub use confanon_ipanon as ipanon;
pub use confanon_netprim as netprim;
pub use confanon_obs as obs;
pub use confanon_redteam as redteam;
pub use confanon_regexlang as regexlang;
pub use confanon_validate as validate;
