//! E9 at the paper's full scale: "4.3 million lines of configuration from
//! 7655 routers running more than 200 different IOS versions."
//!
//! Generates the paper-shaped corpus (31 networks, ≈7.7k routers),
//! anonymizes all of it (networks in parallel, one keyed state per
//! network), scans every network for residual leaks against generator
//! ground truth, and runs both validation suites — then reports wall
//! time and throughput. The paper took "fewer than 5 iterations over 3
//! months" with humans in the loop; the mechanical pass is minutes.
//!
//! ```sh
//! cargo run --release --example paper_scale [mean-routers]
//! ```

use std::time::Instant;

use confanon::confgen::{generate_dataset, paper_dataset_spec};
use confanon::core::leak::LeakScanner;
use confanon::workflow::{
    anonymize_dataset_parallel, ground_truth_record, run_suite1, run_suite2,
};

fn main() {
    let mut spec = paper_dataset_spec(2004);
    if let Some(m) = std::env::args().nth(1).and_then(|a| a.parse().ok()) {
        spec.mean_routers = m;
    }

    let t0 = Instant::now();
    let ds = generate_dataset(&spec);
    let gen_time = t0.elapsed();
    let lines = ds.total_lines();
    let versions: std::collections::HashSet<&str> = ds
        .networks
        .iter()
        .flat_map(|n| n.routers.iter().map(|r| r.ios_version.as_str()))
        .collect();
    println!(
        "corpus: {} networks, {} routers, {} lines, {} IOS versions (generated in {:.1?})",
        ds.networks.len(),
        ds.total_routers(),
        lines,
        versions.len(),
        gen_time
    );
    println!(
        "paper:  31 networks, 7655 routers, 4.3M lines, 200+ IOS versions\n"
    );

    let t1 = Instant::now();
    let runs = anonymize_dataset_parallel(&ds.networks, |i| format!("scale-{i}").into_bytes());
    let anon_time = t1.elapsed();
    println!(
        "anonymized {} lines in {:.1?} ({:.0} lines/s across {} threads)",
        lines,
        anon_time,
        lines as f64 / anon_time.as_secs_f64(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    let t2 = Instant::now();
    let mut s1_pass = 0;
    let mut s2_pass = 0;
    let mut leaks = 0usize;
    for (net, run) in ds.networks.iter().zip(&runs) {
        s1_pass += usize::from(run_suite1(net, run).passed());
        s2_pass += usize::from(run_suite2(net, run).passed());
        let record = ground_truth_record(net);
        let text = run.anonymized.join("\n");
        leaks += LeakScanner::scan_excluding(&record, run.anonymizer.emitted_exclusions(), &text)
            .leaks
            .len();
    }
    println!(
        "validated in {:.1?}: suite1 {}/{}, suite2 {}/{}, residual leaks {}",
        t2.elapsed(),
        s1_pass,
        ds.networks.len(),
        s2_pass,
        ds.networks.len(),
        leaks
    );
}
