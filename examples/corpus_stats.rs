//! Corpus census: regenerates the paper's dataset statistics (E1, E2,
//! E4, E14).
//!
//! * E1 — config-size distribution over all routers ("vary from 50 to
//!   10,000 lines … the 25th percentile was 183 lines and 90th percentile
//!   was 1123");
//! * E2 — comment mass ("an average of 1.5% of the words were found to be
//!   comments and removed (90th percentile 6%)", over 173 networks);
//! * E4 — per-network regexp-feature incidence (§4.4–§4.5);
//! * E14 — compartmentalization incidence ("10 of 31 networks").
//!
//! ```sh
//! cargo run --release --example corpus_stats [routers-per-network]
//! ```

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::core::{Anonymizer, AnonymizerConfig};

fn percentile(sorted: &[usize], p: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64) * p) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let mean_routers: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);

    // E1 / E4 / E14: the 31-network dataset.
    let ds = generate_dataset(&DatasetSpec {
        seed: 2004,
        networks: 31,
        mean_routers,
        backbone_fraction: 0.35,
    });

    println!("=== E1: config size distribution ===");
    let mut sizes: Vec<usize> = ds
        .networks
        .iter()
        .flat_map(|n| n.routers.iter().map(|r| r.config.lines().count()))
        .collect();
    sizes.sort_unstable();
    println!("{:<28} {:>10} {:>10}", "metric", "paper", "measured");
    println!("{:<28} {:>10} {:>10}", "routers", 7655, ds.total_routers());
    println!("{:<28} {:>10} {:>10}", "total lines", "4.3M", ds.total_lines());
    println!("{:<28} {:>10} {:>10}", "min lines", 50, sizes.first().unwrap());
    println!(
        "{:<28} {:>10} {:>10}",
        "25th percentile lines", 183, percentile(&sizes, 0.25)
    );
    println!(
        "{:<28} {:>10} {:>10}",
        "90th percentile lines", 1123, percentile(&sizes, 0.90)
    );
    println!(
        "{:<28} {:>10} {:>10}",
        "max lines", 10_000, sizes.last().unwrap()
    );
    let versions: std::collections::HashSet<&str> = ds
        .networks
        .iter()
        .flat_map(|n| n.routers.iter().map(|r| r.ios_version.as_str()))
        .collect();
    println!("{:<28} {:>10} {:>10}", "distinct IOS versions", "200+", versions.len());

    println!("\n=== E4/E14: per-network feature incidence (31 networks) ===");
    let c = ds.feature_census();
    println!("{:<40} {:>8} {:>8}", "feature", "paper", "measured");
    println!("{:<40} {:>8} {:>8}", "public-ASN range regexps", "2/31", format!("{}/31", c.public_asn_ranges));
    println!("{:<40} {:>8} {:>8}", "private-ASN range regexps", "3/31", format!("{}/31", c.private_asn_ranges));
    println!("{:<40} {:>8} {:>8}", "ASN alternation regexps", "10/31", format!("{}/31", c.asn_alternation));
    println!("{:<40} {:>8} {:>8}", "community regexps", "5/31", format!("{}/31", c.community_regexps));
    println!("{:<40} {:>8} {:>8}", "community range regexps", "2/31", format!("{}/31", c.community_ranges));
    println!("{:<40} {:>8} {:>8}", "internal compartmentalization", "10/31", format!("{}/31", c.compartmentalized));

    // E2: comment mass, measured the way the paper measured it — by
    // running the anonymizer and counting the words it removed — over a
    // 173-network corpus.
    println!("\n=== E2: comment mass over 173 networks ===");
    let ds173 = generate_dataset(&DatasetSpec {
        seed: 173,
        networks: 173,
        mean_routers: (mean_routers / 2).max(3),
        backbone_fraction: 0.35,
    });
    let mut fractions: Vec<f64> = Vec::with_capacity(173);
    for (i, net) in ds173.networks.iter().enumerate() {
        let mut anon = Anonymizer::new(AnonymizerConfig::new(format!("s{i}").into_bytes()));
        for r in &net.routers {
            anon.anonymize_config(&r.config);
        }
        fractions.push(anon.total_stats().comment_word_fraction());
    }
    fractions.sort_by(f64::total_cmp);
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    let p90 = fractions[(fractions.len() as f64 * 0.9) as usize];
    println!("{:<28} {:>10} {:>10}", "metric", "paper", "measured");
    println!("{:<28} {:>10} {:>9.2}%", "mean comment words", "1.5%", 100.0 * mean);
    println!("{:<28} {:>10} {:>9.2}%", "90th pct comment words", "6%", 100.0 * p90);
}
