//! The single-blind validation workflow (E5/E6).
//!
//! For every network in the corpus: anonymize it, then run the paper's
//! two validation suites over the pre/post pair — (1) independent
//! characteristics (#BGP speakers, #interfaces, subnet-size structure)
//! and (2) extracted routing-design equality — and print the results
//! table. The paper's claim is that every row passes.
//!
//! ```sh
//! cargo run --release --example validate_networks [networks] [routers]
//! ```

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::workflow::{anonymize_network, audit_network, run_suite1, run_suite2};

fn main() {
    let networks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(31);
    let routers: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(10);
    let ds = generate_dataset(&DatasetSpec {
        seed: 5,
        networks,
        mean_routers: routers,
        backbone_fraction: 0.35,
    });

    println!(
        "{:<16} {:>7} {:>7} {:>9} {:>9} {:>8} {:>7}",
        "network", "routers", "lines", "suite1", "suite2", "leaks", "speakers"
    );
    let mut all_pass = true;
    for (i, net) in ds.networks.iter().enumerate() {
        let run = anonymize_network(net, format!("secret-{i}").as_bytes());
        let s1 = run_suite1(net, &run);
        let s2 = run_suite2(net, &run);
        let audit = audit_network(net, &run);
        all_pass &= s1.passed() && s2.passed() && audit.is_clean();
        println!(
            "{:<16} {:>7} {:>7} {:>9} {:>9} {:>8} {:>7}",
            net.name,
            net.routers.len(),
            net.total_lines(),
            if s1.passed() { "PASS" } else { "FAIL" },
            if s2.passed() { "PASS" } else { "FAIL" },
            audit.leaks.len(),
            s1.pre.bgp_speakers,
        );
        if !s1.passed() {
            println!("    suite1 differing fields: {:?}", s1.differing_fields);
        }
        if !s2.passed() {
            println!("    suite2 differing routers: {:?}", s2.differing_routers);
        }
    }
    println!(
        "\n{} networks validated: {}",
        ds.networks.len(),
        if all_pass { "ALL PASS" } else { "FAILURES PRESENT" }
    );
}
