//! Quickstart: anonymize the paper's Figure 1 configuration.
//!
//! Prints the pre- and post-anonymization configs side by side, then the
//! structural properties both sides share — the paper's §2 walkthrough as
//! a runnable program.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use confanon::core::figure1::FIGURE1_CONFIG;
use confanon::core::{Anonymizer, AnonymizerConfig};
use confanon::iosparse::Config;
use confanon::validate::network_properties;

fn main() {
    let mut anon = Anonymizer::new(AnonymizerConfig::new(b"foo-corp-secret".to_vec()));
    let out = anon.anonymize_config(FIGURE1_CONFIG);

    println!("=== Figure 1, pre- vs post-anonymization ===\n");
    let pre_lines: Vec<&str> = FIGURE1_CONFIG.lines().collect();
    let post_lines: Vec<&str> = out.text.lines().collect();
    let width = pre_lines.iter().map(|l| l.len()).max().unwrap_or(0).max(30);
    for i in 0..pre_lines.len().max(post_lines.len()) {
        let l = pre_lines.get(i).copied().unwrap_or("");
        let r = post_lines.get(i).copied().unwrap_or("");
        println!("{l:<width$} | {r}");
    }

    println!("\n=== What changed ===");
    println!(
        "comment words removed: {} of {} ({:.2}%)",
        out.stats.words_removed_as_comments,
        out.stats.words_total,
        100.0 * out.stats.comment_word_fraction()
    );
    println!("addresses mapped:      {}", out.stats.ips_mapped);
    println!("specials passed:       {}", out.stats.ips_special_passthrough);
    println!("ASNs permuted:         {}", out.stats.asns_mapped);
    println!("communities mapped:    {}", out.stats.communities_mapped);
    println!("regexps rewritten:     {}", out.stats.regexps_rewritten);
    println!("segments hashed:       {}", out.stats.segments_hashed);
    println!("segments passed:       {}", out.stats.segments_passed);

    println!("\n=== What is preserved (validation suite 1 view) ===");
    let pre = network_properties(&[Config::parse(FIGURE1_CONFIG)]);
    let post = network_properties(&[Config::parse(&out.text)]);
    println!("{:<22} {:>6} {:>6}", "property", "pre", "post");
    println!("{:<22} {:>6} {:>6}", "bgp speakers", pre.bgp_speakers, post.bgp_speakers);
    println!("{:<22} {:>6} {:>6}", "interfaces", pre.interfaces, post.interfaces);
    println!(
        "{:<22} {:>6} {:>6}",
        "route-map clauses", pre.route_map_clauses, post.route_map_clauses
    );
    for (len, count) in &pre.subnet_histogram {
        println!(
            "{:<22} {:>6} {:>6}",
            format!("subnets of size /{len}"),
            count,
            post.subnet_histogram.get(len).copied().unwrap_or(0)
        );
    }
}
