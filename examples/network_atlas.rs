//! The research payoff: a cross-network routing-design atlas computed
//! entirely from **anonymized** configurations.
//!
//! The paper's §1 motivation is that config access would enable studies
//! like the authors' companion paper ("Routing design in operational
//! networks", SIGCOMM 2004 — reference [1]). This example plays the
//! *researcher* role in the single-blind workflow: it never sees the
//! originals, only each owner's anonymized upload, and still tabulates
//! the design landscape — protocol mix, topology shape, iBGP mesh
//! discipline, policy complexity, and configuration bugs (dangling
//! route-map references).
//!
//! As a self-check, the atlas is recomputed from the originals and
//! compared row by row: identical, because every metric is a function of
//! preserved structure.
//!
//! ```sh
//! cargo run --release --example network_atlas [networks] [routers]
//! ```

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::design::{extract_design, DesignSummary};
use confanon::iosparse::Config;
use confanon::workflow::anonymize_network;

fn main() {
    let networks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    let routers: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(12);
    let ds = generate_dataset(&DatasetSpec {
        seed: 1981,
        networks,
        mean_routers: routers,
        backbone_fraction: 0.4,
    });

    println!(
        "{:<14} {:>4} {:>4} {:>5} {:>12} {:>6} {:>5} {:>6} {:>7} {:>8} {:>9}",
        "network", "rtrs", "adj", "deg", "igp", "cover", "bgp", "mesh", "ebgp", "clauses", "dangling"
    );

    let mut identical = true;
    for (i, net) in ds.networks.iter().enumerate() {
        // Researcher side: anonymized only.
        let run = anonymize_network(net, format!("atlas-{i}").as_bytes());
        let post: Vec<Config> = run.anonymized.iter().map(|t| Config::parse(t)).collect();
        let s = DesignSummary::from_design(&extract_design(&post));

        // Owner side (self-check): originals.
        let pre: Vec<Config> = net.routers.iter().map(|r| Config::parse(&r.config)).collect();
        let s_pre = DesignSummary::from_design(&extract_design(&pre));
        identical &= s == s_pre;

        let igps: Vec<String> = s.igps.iter().map(|k| format!("{k:?}")).collect();
        println!(
            "{:<14} {:>4} {:>4} {:>5.1} {:>12} {:>5.0}% {:>5} {:>5.0}% {:>7} {:>8} {:>9}",
            net.name,
            s.routers,
            s.adjacencies,
            s.degree.1,
            igps.join("+"),
            100.0 * s.igp_coverage,
            s.bgp_speakers,
            100.0 * s.ibgp_mesh_completeness,
            s.ebgp_sessions,
            s.policy_clauses,
            s.dangling_policy_refs,
        );
    }

    println!(
        "\natlas from anonymized configs == atlas from originals: {}",
        if identical { "IDENTICAL (the paper's value proposition)" } else { "DIVERGED (bug!)" }
    );
}
