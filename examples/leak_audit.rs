//! The §6.1 iterative methodology (E3/E7).
//!
//! Plays out the paper's experience report: start the anonymizer with
//! several ASN-locator rules "not yet discovered" (ablated), anonymize
//! the corpus, highlight residual leaks, add a rule, repeat. "Our
//! experience is that the iteration closes quickly, requiring fewer than
//! 5 iterations over 3 months."
//!
//! ```sh
//! cargo run --release --example leak_audit [networks] [routers]
//! ```

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::core::iterate::iterate_to_closure;
use confanon::core::RuleId;
use confanon::workflow::{anonymize_network, ground_truth_record};

fn main() {
    let networks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let routers: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(8);
    let ds = generate_dataset(&DatasetSpec {
        seed: 61,
        networks,
        mean_routers: routers,
        backbone_fraction: 0.5,
    });

    // The "not yet discovered" rules at project start: three ASN
    // locators — the class the paper calls out as the most fragile part
    // of the method ("ASNs are syntactically indistinguishable from
    // simple integers").
    let ablated = [
        RuleId::R06RouterBgpAsn,
        RuleId::R07NeighborRemoteAs,
        RuleId::R09AsPathAccessListRegex,
    ];

    println!("=== E3/E7: iterative closure over {networks} networks ===\n");
    let mut worst = 0usize;
    let mut all_converged = true;
    for (i, net) in ds.networks.iter().enumerate() {
        let secret = format!("audit-{i}");
        // Ground truth plays the operator's knowledge; the exclusion set
        // comes from a full-rule reference run (the colleague with the
        // unanonymized configs).
        let reference = anonymize_network(net, secret.as_bytes());
        let record = ground_truth_record(net);
        let configs: Vec<String> = net.routers.iter().map(|r| r.config.clone()).collect();
        let trace = iterate_to_closure(
            &configs,
            secret.as_bytes(),
            &ablated,
            &record,
            &reference.anonymizer.emitted_exclusions(),
            10,
        );
        worst = worst.max(trace.iterations());
        all_converged &= trace.converged;
        print!(
            "{:<16} rounds={} converged={} leaks-per-round=[",
            net.name,
            trace.iterations(),
            trace.converged
        );
        for (j, r) in trace.rounds.iter().enumerate() {
            if j > 0 {
                print!(", ");
            }
            print!("{}", r.leaks_found);
        }
        println!("]");
        for r in &trace.rounds {
            if let Some(rule) = &r.rule_added {
                println!("    round {}: operator adds rule `{rule}`", r.round);
            }
        }
    }

    println!("\n{:<36} {:>8} {:>10}", "metric", "paper", "measured");
    println!("{:<36} {:>8} {:>10}", "iterations to closure", "<5", worst);
    println!(
        "{:<36} {:>8} {:>10}",
        "all networks converged",
        "yes",
        if all_converged { "yes" } else { "NO" }
    );
}
