//! The §6.2/§6.3 fingerprinting attack studies (E10/E11).
//!
//! §6.2 leaves open "whether address space usage fingerprints are
//! sufficiently unique to enable the identification of networks"; §6.3
//! asks the same for peering structure, conjecturing that "peering
//! structure can be used to fingerprint backbone networks, but not edge
//! networks". This example runs both experiments over a synthetic
//! population: compute each network's post-anonymization fingerprint and
//! measure uniqueness (collision classes and Shannon entropy).
//!
//! ```sh
//! cargo run --release --example fingerprint_study [networks] [routers]
//! ```

use std::collections::BTreeSet;

use confanon::confgen::{generate_dataset, DatasetSpec, NetworkProfile};
use confanon::iosparse::{parse_command, Command, Config};
use confanon::netprim::Prefix;
use confanon::validate::fingerprint::{peering_key, subnet_key};
use confanon::validate::{
    peering_fingerprint, run_probe_study, subnet_fingerprint, FingerprintStudy, ProbeModel,
};
use confanon::workflow::anonymize_network;

fn print_study(label: &str, s: &FingerprintStudy) {
    println!("--- {label} ---");
    println!("  networks:             {}", s.networks);
    println!("  distinct fingerprints: {}", s.distinct);
    println!(
        "  uniquely identified:  {} ({:.0}%)",
        s.uniquely_identified,
        100.0 * s.uniquely_identified as f64 / s.networks.max(1) as f64
    );
    println!("  largest anonymity set: {}", s.largest_class);
    println!(
        "  entropy:              {:.2} of {:.2} bits",
        s.entropy_bits, s.max_entropy_bits
    );
}

fn main() {
    let networks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(31);
    let routers: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(10);
    let ds = generate_dataset(&DatasetSpec {
        seed: 62,
        networks,
        mean_routers: routers,
        backbone_fraction: 0.35,
    });

    let mut subnet_keys = Vec::new();
    let mut peering_keys_backbone = Vec::new();
    let mut peering_keys_edge = Vec::new();
    let mut probe_candidates = Vec::new();
    for (i, net) in ds.networks.iter().enumerate() {
        // The attacker probes the *real* network; its subnet structure is
        // what anonymization preserves, so collect it from the originals.
        let mut subnets: BTreeSet<Prefix> = BTreeSet::new();
        for r in &net.routers {
            for line in r.config.lines() {
                if let Command::IpAddress { addr, mask } = parse_command(line) {
                    subnets.insert(Prefix::new(addr, mask.len()));
                }
            }
        }
        let pre: Vec<Config> = net.routers.iter().map(|r| Config::parse(&r.config)).collect();
        probe_candidates.push((
            subnets.into_iter().collect::<Vec<_>>(),
            subnet_fingerprint(&pre),
        ));
        // Fingerprints are computed from the *anonymized* configs — the
        // attacker's view.
        let run = anonymize_network(net, format!("fp-{i}").as_bytes());
        let post: Vec<Config> = run.anonymized.iter().map(|t| Config::parse(t)).collect();
        subnet_keys.push(subnet_key(&subnet_fingerprint(&post)));
        let pk = peering_key(&peering_fingerprint(&post));
        match net.profile {
            NetworkProfile::Backbone => peering_keys_backbone.push(pk),
            NetworkProfile::Enterprise => peering_keys_edge.push(pk),
        }
    }

    println!("=== E10: subnet-size-histogram fingerprints (§6.2) ===");
    print_study("all networks", &FingerprintStudy::from_keys(&subnet_keys));

    println!("\n=== E11: peering-structure fingerprints (§6.3) ===");
    print_study(
        "backbone networks",
        &FingerprintStudy::from_keys(&peering_keys_backbone),
    );
    print_study(
        "edge/enterprise networks",
        &FingerprintStudy::from_keys(&peering_keys_edge),
    );
    println!(
        "\npaper's conjecture: backbones fingerprintable by peering, edges much less so\n\
         (compare the two uniquely-identified percentages above)"
    );

    // E10b: the measurement side of §6.2 — can probing actually recover
    // the histogram? Run the attack at two response rates: open networks
    // and heavily filtered ones.
    println!("\n=== E10b: probe-based histogram recovery (§6.2 attack) ===");
    for (label, model) in [
        ("open networks (90% response)", ProbeModel::default()),
        (
            "filtered networks (20% response)",
            ProbeModel {
                response_rate: 0.2,
                ..Default::default()
            },
        ),
    ] {
        let study = run_probe_study(&probe_candidates, &model, 0xA77AC);
        println!(
            "--- {label} ---\n  identified: {}/{}  ambiguous: {}  mean histogram error (L1): {:.1}",
            study.identified, study.networks, study.ambiguous, study.mean_estimation_error
        );
    }
    println!(
        "\n§6.2's defence holds where measurement is hard: the identification rate\n\
         collapses as firewalls drop probes, even though the fingerprint itself\n\
         is perfectly preserved."
    );
}
