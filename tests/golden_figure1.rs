//! Golden regression: anonymizing Figure 1 under a fixed secret must
//! produce byte-identical output across releases.
//!
//! This guards the determinism contract (§3.2/§6.1): a network owner who
//! re-runs the anonymizer with the same secret must get the same mapping,
//! or previously published anonymized configs stop lining up with newly
//! anonymized ones from the same network. Any change to the hash
//! construction, permutation, trie flip derivation, or rule behaviour
//! shows up here as a diff to explain deliberately.

use confanon::core::figure1::FIGURE1_CONFIG;
use confanon::core::{Anonymizer, AnonymizerConfig};

const GOLDEN: &str = include_str!("golden/figure1.anon");

#[test]
fn figure1_anonymization_is_byte_stable() {
    let mut a = Anonymizer::new(AnonymizerConfig::new(b"golden-secret".to_vec()));
    let out = a.anonymize_config(FIGURE1_CONFIG);
    assert_eq!(
        out.text, GOLDEN,
        "anonymization output changed — if intentional, regenerate \
         tests/golden/figure1.anon and document the mapping break"
    );
}

#[test]
fn golden_output_is_itself_clean() {
    // The committed golden file must contain none of Figure 1's identity.
    for leak in ["foo", "lax", "uunet", "1.1.1.1", "12.126.236.17"] {
        assert!(
            !GOLDEN.to_ascii_lowercase().contains(leak),
            "golden file contains {leak:?}"
        );
    }
    // Structural landmarks must be present.
    for kept in ["router bgp", "router rip", "255.255.255.252", "banner motd ^C"] {
        assert!(GOLDEN.contains(kept), "golden file lost {kept:?}");
    }
}
