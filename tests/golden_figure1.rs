//! Golden regression: anonymizing Figure 1 under a fixed secret must
//! produce byte-identical output across releases.
//!
//! This guards the determinism contract (§3.2/§6.1): a network owner who
//! re-runs the anonymizer with the same secret must get the same mapping,
//! or previously published anonymized configs stop lining up with newly
//! anonymized ones from the same network. Any change to the hash
//! construction, permutation, trie flip derivation, or rule behaviour
//! shows up here as a diff to explain deliberately.

use confanon::core::figure1::FIGURE1_CONFIG;
use confanon::core::{Anonymizer, AnonymizerConfig};

const GOLDEN: &str = include_str!("golden/figure1.anon");

#[test]
fn figure1_anonymization_is_byte_stable() {
    let mut a = Anonymizer::new(AnonymizerConfig::new(b"golden-secret".to_vec()));
    let out = a.anonymize_config(FIGURE1_CONFIG);
    assert_eq!(
        out.text, GOLDEN,
        "anonymization output changed — if intentional, regenerate \
         tests/golden/figure1.anon and document the mapping break"
    );
}

/// Negative control: the mapping must be *keyed*. Under a different
/// owner secret, every anonymized identifier — ASN, address, and hashed
/// word alike — must map to a different image, or the secret isn't doing
/// its job (§6.1: the salt is what makes dictionary reversal infeasible).
#[test]
fn different_secret_changes_every_anonymized_identifier() {
    let audit_under = |secret: &[u8]| {
        let mut a = Anonymizer::new(AnonymizerConfig::new(secret.to_vec()));
        a.anonymize_config(FIGURE1_CONFIG);
        a.mapping_audit()
    };
    let golden = audit_under(b"golden-secret");
    let other = audit_under(b"a-completely-different-secret");

    let total = golden.asns.len() + golden.addresses.len() + golden.words.len();
    assert!(total > 0, "figure 1 must exercise the mapping");

    for (kind, a, b) in [
        ("asn", &golden.asns, &other.asns),
        ("address", &golden.addresses, &other.addresses),
        ("word", &golden.words, &other.words),
    ] {
        assert_eq!(
            a.keys().collect::<Vec<_>>(),
            b.keys().collect::<Vec<_>>(),
            "located {kind}s must not depend on the secret"
        );
        for (orig, image) in a {
            assert_ne!(
                image, &b[orig],
                "{kind} {orig:?} maps identically under two different secrets"
            );
        }
    }
}

#[test]
fn golden_output_is_itself_clean() {
    // The committed golden file must contain none of Figure 1's identity.
    for leak in ["foo", "lax", "uunet", "1.1.1.1", "12.126.236.17"] {
        assert!(
            !GOLDEN.to_ascii_lowercase().contains(leak),
            "golden file contains {leak:?}"
        );
    }
    // Structural landmarks must be present.
    for kept in ["router bgp", "router rip", "255.255.255.252", "banner motd ^C"] {
        assert!(GOLDEN.contains(kept), "golden file lost {kept:?}");
    }
}
