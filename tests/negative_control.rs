//! E15 — the negative control: anonymity without structure.
//!
//! Running the pipeline with the per-address scrambler instead of the
//! structure-preserving trie gives the *same anonymity* (injective keyed
//! mapping, comments stripped, tokens hashed) and destroys the
//! relationships the paper exists to preserve. The validation suites must
//! fail — which is the quantified argument for §4.3's design.

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::core::{Anonymizer, AnonymizerConfig, IpScheme};
use confanon::iosparse::Config;
use confanon::validate::{compare_designs, compare_properties, network_properties};

fn spec() -> DatasetSpec {
    DatasetSpec {
        seed: 15,
        networks: 4,
        mean_routers: 10,
        backbone_fraction: 0.5,
    }
}

fn run_with_scheme(scheme: IpScheme) -> (usize, usize, usize) {
    let ds = generate_dataset(&spec());
    let mut suite1_failures = 0;
    let mut suite2_failures = 0;
    let mut networks = 0;
    for (i, net) in ds.networks.iter().enumerate() {
        networks += 1;
        let mut cfg = AnonymizerConfig::new(format!("nc-{i}").into_bytes());
        cfg.ip_scheme = scheme;
        let mut anon = Anonymizer::new(cfg);
        let pre: Vec<Config> = net.routers.iter().map(|r| Config::parse(&r.config)).collect();
        let post: Vec<Config> = net
            .routers
            .iter()
            .map(|r| Config::parse(&anon.anonymize_config(&r.config).text))
            .collect();
        let s1 = compare_properties(&network_properties(&pre), &network_properties(&post));
        let s2 = compare_designs(&pre, &post);
        suite1_failures += usize::from(!s1.passed());
        suite2_failures += usize::from(!s2.passed());
    }
    (networks, suite1_failures, suite2_failures)
}

#[test]
fn structure_preserving_scheme_passes_everywhere() {
    let (n, f1, f2) = run_with_scheme(IpScheme::StructurePreserving);
    assert_eq!((f1, f2), (0, 0), "failures on {n} networks");
}

#[test]
fn scramble_scheme_fails_the_suites() {
    let (n, f1, f2) = run_with_scheme(IpScheme::Scramble);
    // Suite 2 must fail everywhere: adjacency (/30 link sharing), IGP
    // coverage (subnet-contains), and iBGP session resolution all depend
    // on prefix relationships the scramble destroys.
    assert_eq!(f2, n, "suite2 should fail on all {n} networks, failed on {f2}");
    // Suite 1 must fail on most networks too: the subnet-size histogram
    // collapses because every scrambled interface address of a /30 pair
    // lands in its own subnet.
    assert!(f1 >= n - 1, "suite1 failed on only {f1} of {n}");
}

#[test]
fn scramble_still_anonymizes() {
    // The control is anonymity-equivalent: originals still disappear.
    let ds = generate_dataset(&spec());
    let net = &ds.networks[0];
    let mut cfg = AnonymizerConfig::new(b"nc".to_vec());
    cfg.ip_scheme = IpScheme::Scramble;
    let mut anon = Anonymizer::new(cfg);
    let text: String = net
        .routers
        .iter()
        .map(|r| anon.anonymize_config(&r.config).text)
        .collect();
    for ip in net.ground_truth.addresses.iter().take(50) {
        assert!(
            !text.split_whitespace().any(|t| t == ip),
            "{ip} survived the scramble"
        );
    }
}
