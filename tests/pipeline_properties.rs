//! Property tests over the whole pipeline: random configurations in,
//! paper invariants out.

use confanon::core::{Anonymizer, AnonymizerConfig};
use confanon::iosparse::Config;
use confanon::netprim::{special_kind, Ip};
use confanon::validate::network_properties;
use confanon_testkit::props::{any, assume, pattern, Strategy};

/// Strategy: a random but well-formed mini-config.
fn mini_config() -> impl Strategy<Value = String> {
    let ip = any::<u32>().prop_map(Ip);
    let masklen = 8u8..=30;
    let iface = (any::<u32>().prop_map(Ip), masklen).prop_map(|(ip, len)| {
        format!(
            "interface Serial0/0\n ip address {ip} {}\n",
            confanon::netprim::Netmask::from_len(len)
        )
    });
    let bgp = (1u16..64000, ip, 1u16..64000).prop_map(|(asn, peer, pasn)| {
        format!("router bgp {asn}\n neighbor {peer} remote-as {pasn}\n")
    });
    let name = pattern("[a-z]{3,10}").prop_map(|n| format!("hostname r1.{n}.com\n"));
    let comment = pattern("[a-z ]{0,30}").prop_map(|c| format!("! {c}\n"));
    (name, iface, bgp, comment).prop_map(|(a, b, c, d)| format!("{a}{d}{b}{c}"))
}

confanon_testkit::props! {
    cases = 256;

    /// Suite-1 invariants hold on arbitrary generated configs.
    fn suite1_invariants_on_random_configs(text in mini_config(), seed in any::<u64>()) {
        let mut anon = Anonymizer::new(AnonymizerConfig::new(seed.to_be_bytes().to_vec()));
        let out = anon.anonymize_config(&text);
        let pre = network_properties(&[Config::parse(&text)]);
        let post = network_properties(&[Config::parse(&out.text)]);
        assert_eq!(pre.bgp_speakers, post.bgp_speakers);
        assert_eq!(pre.interfaces, post.interfaces);
        assert_eq!(&pre.subnet_histogram, &post.subnet_histogram);
        assert_eq!(pre.bgp_neighbors, post.bgp_neighbors);
    }

    /// Ordinary addresses never survive; special addresses always do.
    fn address_disposition(raw in any::<u32>(), seed in any::<u64>()) {
        let ip = Ip(raw);
        let text = format!(" ip route {ip} 255.255.255.255 Null0\n");
        let mut anon = Anonymizer::new(AnonymizerConfig::new(seed.to_be_bytes().to_vec()));
        let out = anon.anonymize_config(&text);
        let survived = out
            .text
            .split_whitespace()
            .any(|t| t == ip.to_string());
        if special_kind(ip).is_some() {
            assert!(survived, "special {ip} was altered: {}", out.text);
        } else {
            assert!(!survived, "ordinary {ip} survived: {}", out.text);
        }
    }

    /// Same secret → identical output; different secrets → different
    /// output (for configs with something to anonymize).
    fn keyed_determinism(text in mini_config(), s1 in any::<u64>(), s2 in any::<u64>()) {
        assume(s1 != s2);
        let run = |s: u64| {
            let mut a = Anonymizer::new(AnonymizerConfig::new(s.to_be_bytes().to_vec()));
            a.anonymize_config(&text).text
        };
        assert_eq!(run(s1), run(s1));
        // Different secrets must differ somewhere (the hostname hash at
        // minimum).
        assert_ne!(run(s1), run(s2));
    }

    /// Double anonymization is structure-stable: anonymizing the output
    /// again (fresh secret) preserves suite-1 properties.
    fn double_anonymization_is_structure_stable(text in mini_config(), seed in any::<u64>()) {
        let mut a1 = Anonymizer::new(AnonymizerConfig::new(seed.to_be_bytes().to_vec()));
        let once = a1.anonymize_config(&text).text;
        let mut a2 = Anonymizer::new(AnonymizerConfig::new((!seed).to_be_bytes().to_vec()));
        let twice = a2.anonymize_config(&once).text;
        let p1 = network_properties(&[Config::parse(&once)]);
        let p2 = network_properties(&[Config::parse(&twice)]);
        assert_eq!(&p1.subnet_histogram, &p2.subnet_histogram);
        assert_eq!(p1.bgp_speakers, p2.bgp_speakers);
        assert_eq!(p1.interfaces, p2.interfaces);
    }

    /// Comment text never survives, whatever it says.
    fn comments_always_stripped(words in pattern("[a-z]{2,8}( [a-z]{2,8}){0,4}"), seed in any::<u64>()) {
        let text = format!("! secret note about {words}\nhostname r1\n");
        let mut anon = Anonymizer::new(AnonymizerConfig::new(seed.to_be_bytes().to_vec()));
        let out = anon.anonymize_config(&text);
        let first = out.text.lines().next().unwrap_or("");
        assert_eq!(first, "!");
    }

    /// Referential integrity: an identifier used twice hashes to the same
    /// value both times, whatever the identifier.
    fn referential_integrity_random_names(name in pattern("[A-Za-z][A-Za-z0-9]{0,14}"), seed in any::<u64>()) {
        let text = format!(
            " neighbor 9.9.9.9 route-map {name} in\nroute-map {name} permit 10\n"
        );
        let mut anon = Anonymizer::new(AnonymizerConfig::new(seed.to_be_bytes().to_vec()));
        let out = anon.anonymize_config(&text);
        let lines: Vec<&str> = out.text.lines().collect();
        let use_tok = lines[0].split_whitespace().nth(3).unwrap();
        let def_tok = lines[1].split_whitespace().nth(1).unwrap();
        assert_eq!(use_tok, def_tok, "{}", out.text);
    }
}
