//! Robustness: the anonymizer processes arbitrary text without panicking
//! and without leaking it.
//!
//! §1: "the anonymization process must be fully automated to avoid human
//! errors and gain the acceptance of network operators" — a tool that
//! crashes on the 200th IOS version's weird syntax fails that bar. The
//! pipeline's contract is total: any input produces output, and unknown
//! words still hash.

use confanon::core::{Anonymizer, AnonymizerConfig};
use confanon_testkit::props::pattern;

confanon_testkit::props! {
    cases = 256;

    /// Arbitrary printable soup: no panics, and the output has the same
    /// number of lines or fewer (dropped free text), never more.
    fn arbitrary_text_never_panics(text in pattern("[ -~\n]{0,400}")) {
        let mut anon = Anonymizer::new(AnonymizerConfig::new(b"fuzz".to_vec()));
        let out = anon.anonymize_config(&text);
        assert!(out.text.lines().count() <= text.lines().count() + 1);
    }

    /// Hostile banner/regexp fragments: still no panics.
    fn hostile_structures_never_panic(
        delim in pattern("[#~@^]{1,2}"),
        junk in pattern("[ -~]{0,60}"),
        pat in pattern(r"[(|)\[\]0-9a-z^$_*+?{},-]{0,30}"),
    ) {
        let text = format!(
            "banner motd {delim}\n{junk}\n{delim}\nip as-path access-list 5 permit {pat}\n"
        );
        let mut anon = Anonymizer::new(AnonymizerConfig::new(b"fuzz".to_vec()));
        let _ = anon.anonymize_config(&text);
    }

    /// Unknown alphabetic words never survive (unless pass-listed).
    fn unknown_words_never_survive(word in pattern("[a-z]{12,20}")) {
        // 12+ letter random words are never on the pass-list.
        let text = format!("some {word} here\n");
        let mut anon = Anonymizer::new(AnonymizerConfig::new(b"fuzz".to_vec()));
        let out = anon.anonymize_config(&text);
        assert!(!out.text.contains(&word), "{}", out.text);
    }

    /// Pathological token shapes: long dotted strings, nested punctuation.
    fn degenerate_tokens_handled(n in 1usize..50) {
        let token = ".".repeat(n) + &"1.".repeat(n) + "x";
        let text = format!("cmd {token}\n");
        let mut anon = Anonymizer::new(AnonymizerConfig::new(b"fuzz".to_vec()));
        let _ = anon.anonymize_config(&text);
    }
}

#[test]
fn empty_and_whitespace_configs() {
    let mut anon = Anonymizer::new(AnonymizerConfig::new(b"fuzz".to_vec()));
    assert_eq!(anon.anonymize_config("").text, "");
    let out = anon.anonymize_config("\n\n   \n");
    assert_eq!(out.text, "\n\n\n");
}

#[test]
fn enormous_single_line() {
    let line = format!("description {}\n", "x ".repeat(50_000));
    let mut anon = Anonymizer::new(AnonymizerConfig::new(b"fuzz".to_vec()));
    let out = anon.anonymize_config(&line);
    assert!(out.text.is_empty() || out.text == "\n");
}

#[test]
fn crlf_input_does_not_confuse_classification() {
    let text = "hostname r1\r\n! comment\r\ninterface e0\r\n";
    let mut anon = Anonymizer::new(AnonymizerConfig::new(b"fuzz".to_vec()));
    let out = anon.anonymize_config(text);
    assert!(out.text.contains("hostname"));
    assert!(out.text.contains("interface"));
}
