//! Chaos property suite: the fail-closed contract under hostile input.
//!
//! Three properties, each over seeded random corruption of realistic
//! configs ([`confanon_testkit::chaos`]):
//!
//! 1. **No panic escapes.** The gated pipeline completes on any mutated
//!    corpus, and — stronger — no real (non-injected) panic even needs
//!    containment: the hardened anonymizer handles hostile text itself.
//! 2. **No recorded identifier is released.** Every output the gate
//!    releases scans clean against the anonymizer's own leak record.
//! 3. **Determinism.** The same seed yields byte-identical released
//!    bytes, quarantine sets, and reports — at any worker count.

use confanon::core::{
    sanitize_bytes, write_atomic, AnonymizerConfig, DurabilityStats, LeakScanner,
};
use confanon::obs::{metrics_doc, validate_metrics};
use confanon::workflow::{anonymize_corpus_gated, GatedCorpusRun};
use confanon_testkit::chaos::ChaosMutator;
use confanon_testkit::faultfs::FaultFs;
use confanon_testkit::json::Json;

/// Realistic base configs, kept small so each property case runs a
/// whole corpus.
fn base_corpus() -> Vec<(String, String)> {
    let ds = confanon::confgen::generate_dataset(&confanon::confgen::DatasetSpec {
        seed: 0x0C40_5BA5,
        networks: 1,
        mean_routers: 5,
        backbone_fraction: 0.5,
    });
    ds.networks[0]
        .routers
        .iter()
        .map(|r| (format!("{}.cfg", r.hostname), r.config.clone()))
        .collect()
}

/// Mutates the base corpus under `seed` and repairs the bytes the way
/// the CLI's read path does.
fn chaos_corpus(seed: u64) -> Vec<(String, String)> {
    let mut mutator = ChaosMutator::new(seed);
    base_corpus()
        .into_iter()
        .map(|(name, text)| {
            let mutated = mutator.mutate(text.as_bytes());
            let (repaired, _) = sanitize_bytes(&mutated.bytes);
            (name, repaired)
        })
        .collect()
}

fn run(files: &[(String, String)], jobs: usize) -> GatedCorpusRun {
    anonymize_corpus_gated(files, AnonymizerConfig::new(b"chaos-secret".to_vec()), jobs)
}

confanon_testkit::props! {
    cases = 8;

    /// Properties 1 and 2: the pipeline digests any mutated corpus with
    /// no contained (let alone escaped) panics, and nothing it releases
    /// contains a recorded identifier.
    fn no_panic_and_no_recorded_identifier_released(seed in 0u64..1_000_000) {
        let files = chaos_corpus(seed);
        let out = run(&files, 4);
        assert!(
            out.failures.is_empty(),
            "hostile input must not panic the hardened pipeline: {:?}",
            out.failures
        );
        for o in &out.clean {
            let scan = LeakScanner::scan_excluding(
                out.anonymizer.leak_record(),
                out.anonymizer.emitted_exclusions(),
                &o.text,
            );
            assert!(
                scan.is_clean(),
                "released output {} carries recorded identifiers: {:?}",
                o.name,
                scan.leaks
            );
        }
    }

    /// Property 3: same seed, same bytes — released, quarantined, and
    /// reported alike — regardless of worker count.
    fn deterministic_under_any_seed(seed in 0u64..1_000_000) {
        let files = chaos_corpus(seed);
        let a = run(&files, 1);
        let b = run(&files, 8);
        let view = |r: &GatedCorpusRun| {
            (
                r.clean.iter().map(|o| (o.name.clone(), o.text.clone())).collect::<Vec<_>>(),
                r.quarantined
                    .iter()
                    .map(|q| (q.output.name.clone(), q.output.text.clone()))
                    .collect::<Vec<_>>(),
                r.leak_report_json().to_string_pretty(),
            )
        };
        assert_eq!(view(&a), view(&b));
        // And an independent rerun of the same seed reproduces it all.
        let c = run(&chaos_corpus(seed), 8);
        assert_eq!(view(&a), view(&c));
    }

    /// Observability under hostility: whatever a mutated corpus does to
    /// the pipeline, the metrics document stays schema-valid, its corpus
    /// accounting sums, and quarantined/failed files land under their
    /// own keys — never silently folded into the released count.
    fn hostile_corpus_yields_a_valid_accounted_metrics_doc(seed in 0u64..1_000_000) {
        let files = chaos_corpus(seed);
        let out = run(&files, 4);
        let doc = metrics_doc(
            out.metrics_deterministic_json(),
            out.metrics_timing_json(),
        );
        // Round-trip through the parser, exactly as a reader would see it.
        let parsed = Json::parse(&doc.to_string_pretty()).expect("metrics must parse");
        validate_metrics(&parsed).expect("metrics must validate");

        let corpus = parsed
            .get("deterministic")
            .and_then(|d| d.get("corpus"))
            .expect("corpus accounting");
        let field = |k: &str| corpus.get(k).and_then(Json::as_u64).unwrap_or_else(|| panic!("missing {k}"));
        assert_eq!(
            field("released_or_verified") + field("quarantined") + field("failed"),
            field("files_total"),
            "corpus accounting must sum: every input file ends in exactly one state"
        );
        assert_eq!(field("files_total"), files.len() as u64);
        assert_eq!(field("quarantined"), out.quarantined.len() as u64);
        assert_eq!(field("failed"), out.failures.len() as u64);
    }

    /// A fault-injecting filesystem cannot produce a torn metrics file:
    /// `write_atomic` either lands the whole schema-valid document at
    /// the target or leaves nothing there (modulo the staged temp file
    /// a failed rename legally abandons).
    fn faulted_metrics_write_is_never_torn(seed in 0u64..1_000_000) {
        let files = chaos_corpus(seed % 16); // a few distinct corpora suffice
        let out = run(&files, 2);
        let doc = metrics_doc(out.metrics_deterministic_json(), out.metrics_timing_json());
        let bytes = doc.to_string_pretty();

        let dir = std::env::temp_dir().join(format!(
            "confanon-chaos-metrics-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk scratch");
        let target = dir.join("metrics.json");
        let fs = FaultFs::new(seed);
        let mut stats = DurabilityStats::default();
        let result = write_atomic(&fs, &target, bytes.as_bytes(), &mut stats);

        match std::fs::read_to_string(&target) {
            Ok(on_disk) => {
                // Present ⇒ complete: the full document, parseable and valid.
                assert_eq!(on_disk, bytes, "metrics file on disk is torn");
                let parsed = Json::parse(&on_disk).expect("on-disk metrics must parse");
                validate_metrics(&parsed).expect("on-disk metrics must validate");
                assert!(
                    result.is_ok(),
                    "write reported failure but the target landed: {result:?}"
                );
            }
            Err(_) => assert!(
                result.is_err(),
                "write reported success but the target is absent"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The report schema round-trips through the in-tree JSON parser with
/// the documented summary fields intact.
#[test]
fn leak_report_round_trips_the_json_parser() {
    let files = chaos_corpus(7);
    let out = run(&files, 2);
    let text = out.leak_report_json().to_string_pretty();
    let parsed = confanon_testkit::json::Json::parse(&text).expect("valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some("confanon-leak-report-v1")
    );
    for field in [
        "clean_files",
        "quarantined_files",
        "panic_contained_files",
        "total_leaks",
    ] {
        assert!(
            parsed.get(field).and_then(|v| v.as_u64()).is_some(),
            "missing {field}"
        );
    }
    assert!(parsed.get("quarantined").and_then(|v| v.as_array()).is_some());
    assert!(parsed.get("failures").and_then(|v| v.as_array()).is_some());
}

/// Raw (unsanitized) hostile bytes pushed straight into the pipeline —
/// bypassing the CLI's repair pass — still cannot panic it. This pins
/// the anonymizer's own tolerance, independent of `sanitize_bytes`.
#[test]
fn unsanitized_mutations_never_panic_the_anonymizer() {
    let base = base_corpus();
    let mut mutator = ChaosMutator::new(0xBAD_F00D);
    for round in 0..8 {
        let files: Vec<(String, String)> = base
            .iter()
            .map(|(name, text)| {
                let mutated = mutator.mutate(text.as_bytes());
                // Lossy conversion only — no control-char or line-length
                // repair at all.
                (
                    format!("{round}-{name}"),
                    String::from_utf8_lossy(&mutated.bytes).into_owned(),
                )
            })
            .collect();
        let out = run(&files, 3);
        assert!(out.failures.is_empty(), "round {round}: {:?}", out.failures);
    }
}

// ---- the red team under hostility ----------------------------------

// Whatever chaos does to the corpus, the risk audit holds its
// contract: the attack battery never panics, the assembled
// `confanon-risk-v1` document passes its own validator (which enforces
// that successes never exceed trials and every published rate is
// consistent with its counts), and the corpus accounting matches what
// the pipeline actually released.
confanon_testkit::props! {
    cases = 6;

    fn hostile_corpus_yields_a_valid_risk_report(seed in 0u64..1_000_000) {
        use confanon::redteam::{build_risk_report, run_suite, validate_risk_report, AuditOptions};

        let pre = chaos_corpus(seed);
        let out = run(&pre, 3);
        // A real release: only what the gate let through.
        let post: Vec<(String, String)> = out
            .clean
            .iter()
            .map(|o| (o.name.clone(), o.text.clone()))
            .collect();

        let opts = AuditOptions { seed, ..AuditOptions::default() };
        let no_decoys = std::collections::BTreeSet::new();
        let suite = run_suite(&pre, &post, &no_decoys, b"chaos-secret", &opts);
        let report = build_risk_report(&opts, &suite, &[]);
        validate_risk_report(&report).unwrap_or_else(|e| {
            panic!("seed {seed}: hostile corpus broke the risk report: {e}")
        });

        // The battery is replayable even on mutilated input.
        assert_eq!(
            suite,
            run_suite(&pre, &post, &no_decoys, b"chaos-secret", &opts),
            "seed {seed}: attack battery must be deterministic"
        );
        // Accounting: trials decompose exactly into the three attacks,
        // and every rate is a probability.
        assert_eq!(
            suite.attack_trials(),
            suite.prefix.trials + suite.degree.trials + suite.asn.trials,
            "seed {seed}: trial accounting must sum"
        );
        let overall = suite.risk_overall();
        assert!(
            (0.0..=1.0).contains(&overall),
            "seed {seed}: risk_overall {overall} out of range"
        );
        assert!(suite.prefix.successes <= suite.prefix.trials);
        assert!(suite.degree.successes <= suite.degree.trials);
        assert!(suite.asn.successes <= suite.asn.trials);
    }
}
