//! The cross-session equivalence suite for `--state` incremental runs
//! (the tentpole acceptance criterion).
//!
//! The claim under test: a *warm* run — loading a `confanon-state-v1`
//! directory produced by an earlier session over a subset of the corpus
//! — is observationally identical to a *cold* run over the full corpus,
//! for every artifact a consumer can see: released bytes, the
//! `run_manifest.json` journal, and the deterministic metrics section.
//! Warm runs additionally skip every watermark-unchanged file (checked
//! via the metrics `state` block), and the equivalence holds at any
//! `--jobs` value, over chaos corpora, and from every crash point of
//! the warm run via `--resume`.
//!
//! Scope of the byte-identity claim: it covers *append growth* — new
//! files sorting after every session-1 file — because there the warm
//! journal (session-1 first-mapped order, then new discoveries) equals
//! the cold run's first-occurrence order, so trie nodes are created in
//! the same sequence and the order-sensitive point-special repairs land
//! identically. For arbitrary growth or edits the weaker (and primary)
//! guarantee holds instead, and is asserted by the watermark tests
//! below: every previously issued mapping stays exactly stable.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use confanon::core::{AnonState, Anonymizer, AnonymizerConfig, RunManifest};
use confanon_testkit::json::Json;

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_confanon"))
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "confanon-incr-{name}-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mktemp");
    d
}

/// Recursively collects `relative path → bytes` under `dir`.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for e in std::fs::read_dir(dir).expect("read_dir").flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(root, &p, out);
            } else {
                let rel = p
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .to_string();
                out.insert(rel, std::fs::read(&p).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    if dir.is_dir() {
        walk(dir, dir, &mut out);
    }
    out
}

fn copy_dir(src: &Path, dst: &Path) {
    for (rel, bytes) in snapshot(src) {
        let target = dst.join(&rel);
        std::fs::create_dir_all(target.parent().expect("parent")).expect("mkdir");
        std::fs::write(&target, &bytes).expect("copy file");
    }
}

/// Runs `batch --secret incr-suite-secret` with optional `--state`,
/// `--resume`, `--metrics`; returns (exit code, stderr).
fn run_batch(
    corpus: &Path,
    out_dir: &Path,
    state_dir: Option<&Path>,
    jobs: u32,
    resume: bool,
    metrics: Option<&Path>,
) -> (Option<i32>, String) {
    let mut cmd = bin();
    cmd.args(["batch", "--secret", "incr-suite-secret", "--jobs", &jobs.to_string()]);
    if resume {
        cmd.arg("--resume");
    }
    if let Some(s) = state_dir {
        cmd.arg("--state").arg(s);
    }
    if let Some(m) = metrics {
        cmd.arg("--metrics").arg(m);
    }
    cmd.arg("--out-dir").arg(out_dir).arg(corpus);
    cmd.env_remove("CONFANON_CRASH_AFTER");
    let out = cmd.output().expect("run batch");
    (out.status.code(), String::from_utf8_lossy(&out.stderr).to_string())
}

/// The deterministic section of a metrics file, canonically printed by
/// the `metrics --deterministic` subcommand (the supported diff tool).
fn deterministic_section(metrics: &Path) -> String {
    let out = bin()
        .args(["metrics", "--deterministic"])
        .arg(metrics)
        .output()
        .expect("run metrics");
    assert!(out.status.success(), "metrics validation failed on {}", metrics.display());
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// The `timing.state` block of a metrics file as parsed JSON.
fn state_block(metrics: &Path) -> Json {
    let text = std::fs::read_to_string(metrics).expect("read metrics");
    let doc = Json::parse(&text).expect("valid metrics json");
    doc.get("timing")
        .and_then(|t| t.get("state"))
        .cloned()
        .expect("metrics timing has a state block")
}

fn state_u64(block: &Json, key: &str) -> u64 {
    block
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("state block missing {key}")) as u64
}

/// A two-network generated corpus, plus the subset holding only its
/// earlier-sorting network. Growth is then a *suffix append* — every new
/// file sorts after every session-1 file — which is the precondition of
/// the byte-identity claim: the warm journal (session-1 first-mapped
/// order, then new discoveries) equals the cold run's first-occurrence
/// order, so both runs create trie nodes in the same sequence and the
/// order-sensitive point-special repairs land identically.
fn generated_split(root: &Path) -> (PathBuf, PathBuf) {
    let full = root.join("corpus-full");
    let status = bin()
        .args(["generate", "--networks", "2", "--routers", "4", "--seed", "1964"])
        .arg("--out-dir")
        .arg(&full)
        .status()
        .expect("run generate");
    assert!(status.success());
    let nets: Vec<String> = std::fs::read_dir(&full)
        .expect("read corpus")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().to_string())
        .collect();
    assert_eq!(nets.len(), 2, "expected two network directories");
    let small = root.join("corpus-small");
    let keep = nets.iter().min().expect("a network"); // the earlier-sorting one
    copy_dir(&full.join(keep), &small.join(keep));
    (small, full)
}

fn cfg_count(dir: &Path) -> u64 {
    snapshot(dir).keys().filter(|k| k.ends_with(".cfg")).count() as u64
}

#[test]
fn warm_append_growth_matches_cold_run_at_any_jobs() {
    let root = tmpdir("growth");
    let (small, full) = generated_split(&root);
    let small_n = cfg_count(&small);
    let full_n = cfg_count(&full);
    assert!(full_n > small_n && small_n > 0);

    // Session 1: cold run over the subset, persisting state.
    let out1 = root.join("out");
    let st1 = root.join("st");
    let (code, stderr) = run_batch(&small, &out1, Some(&st1), 2, false, None);
    assert_eq!(code, Some(0), "session 1: {stderr}");

    // The cold reference over the full corpus.
    let out_cold = root.join("out-cold");
    let m_cold = root.join("m-cold.json");
    let (code, stderr) = run_batch(&full, &out_cold, Some(root.join("st-cold").as_path()), 1, false, Some(&m_cold));
    assert_eq!(code, Some(0), "cold reference: {stderr}");
    let golden = snapshot(&out_cold);
    let golden_det = deterministic_section(&m_cold);

    for jobs in [1u32, 2, 4] {
        let out_w = root.join(format!("out-warm-j{jobs}"));
        let st_w = root.join(format!("st-warm-j{jobs}"));
        copy_dir(&out1, &out_w);
        copy_dir(&st1, &st_w);
        let m_w = root.join(format!("m-warm-j{jobs}.json"));
        let (code, stderr) = run_batch(&full, &out_w, Some(&st_w), jobs, false, Some(&m_w));
        assert_eq!(code, Some(0), "warm run jobs={jobs}: {stderr}");
        assert!(stderr.contains("state: loaded"), "jobs={jobs}: {stderr}");
        assert_eq!(
            snapshot(&out_w),
            golden,
            "jobs={jobs}: warm outputs + manifest differ from the cold run"
        );
        assert_eq!(
            deterministic_section(&m_w),
            golden_det,
            "jobs={jobs}: warm deterministic metrics differ from the cold run"
        );
        let block = state_block(&m_w);
        assert_eq!(state_u64(&block, "files_skipped"), small_n, "jobs={jobs}");
        assert_eq!(state_u64(&block, "files_processed"), full_n - small_n, "jobs={jobs}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unchanged_corpus_warm_rerun_skips_every_file() {
    let root = tmpdir("unchanged");
    let (_, full) = generated_split(&root);
    let n = cfg_count(&full);

    let out = root.join("out");
    let st = root.join("st");
    let m1 = root.join("m1.json");
    let (code, stderr) = run_batch(&full, &out, Some(&st), 2, false, Some(&m1));
    assert_eq!(code, Some(0), "cold: {stderr}");
    let done = snapshot(&out);
    let st_done = snapshot(&st);

    let m2 = root.join("m2.json");
    let (code, stderr) = run_batch(&full, &out, Some(&st), 4, false, Some(&m2));
    assert_eq!(code, Some(0), "warm: {stderr}");
    assert!(
        stderr.contains("released 0 file(s)"),
        "warm rerun must release nothing: {stderr}"
    );
    let block = state_block(&m2);
    assert_eq!(state_u64(&block, "files_skipped"), n, "every file must skip");
    assert_eq!(state_u64(&block, "files_processed"), 0);
    assert!(state_u64(&block, "trie4_nodes_restored") > 0);
    assert_eq!(snapshot(&out), done, "outputs must not change by a byte");
    assert_eq!(snapshot(&st), st_done, "rewritten state must be byte-identical");
    assert_eq!(
        deterministic_section(&m2),
        deterministic_section(&m1),
        "deterministic metrics must match the cold run"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn chaos_corpus_incremental_equivalence() {
    // Hostile inputs take the quarantine and panic-containment paths;
    // the warm/cold equivalence must not depend on inputs being tame.
    let root = tmpdir("chaos");
    let seedbed = root.join("seedbed");
    let status = bin()
        .args(["chaos", "--seed", "2024", "--count", "8"])
        .arg("--out-dir")
        .arg(&seedbed)
        .status()
        .expect("run chaos");
    assert!(status.success());
    let names: Vec<String> = {
        let mut v: Vec<String> = snapshot(&seedbed).into_keys().collect();
        v.sort();
        v
    };
    assert!(names.len() >= 6, "chaos corpus too small");
    let small = root.join("small");
    let full = root.join("full");
    for (i, rel) in names.iter().enumerate() {
        let bytes = std::fs::read(seedbed.join(rel)).expect("read chaos file");
        std::fs::create_dir_all(full.join(rel).parent().expect("parent")).expect("mkdir");
        std::fs::write(full.join(rel), &bytes).expect("write");
        if i < names.len() / 2 {
            std::fs::create_dir_all(small.join(rel).parent().expect("parent")).expect("mkdir");
            std::fs::write(small.join(rel), &bytes).expect("write");
        }
    }

    let out_w = root.join("out-warm");
    let st_w = root.join("st-warm");
    let (code1, stderr) = run_batch(&small, &out_w, Some(&st_w), 2, false, None);
    assert!(code1.is_some(), "session 1 died: {stderr}");
    let (code_w, stderr_w) = run_batch(&full, &out_w, Some(&st_w), 4, false, None);

    let out_c = root.join("out-cold");
    let (code_c, stderr_c) = run_batch(&full, &out_c, Some(root.join("st-cold").as_path()), 2, false, None);

    assert_eq!(code_w, code_c, "exit codes diverge\nwarm: {stderr_w}\ncold: {stderr_c}");
    assert_eq!(
        snapshot(&out_w),
        snapshot(&out_c),
        "warm chaos outputs differ from cold"
    );
    // Quarantined bytes (if the gate tripped) must agree too.
    let q = |p: &Path| {
        let mut s = p.as_os_str().to_os_string();
        s.push("-quarantine");
        PathBuf::from(s)
    };
    assert_eq!(snapshot(&q(&out_w)), snapshot(&q(&out_c)), "quarantines diverge");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn every_crash_point_of_a_warm_run_resumes_byte_identically() {
    let root = tmpdir("crash");
    let (small, full) = generated_split(&root);

    // Session 1 over the subset; its artifacts are the warm baseline
    // every crash trial starts from.
    let out1 = root.join("out");
    let st1 = root.join("st");
    let (code, stderr) = run_batch(&small, &out1, Some(&st1), 1, false, None);
    assert_eq!(code, Some(0), "session 1: {stderr}");

    // Golden uninterrupted warm run; its durable-write count (which now
    // includes the state.json write) enumerates the crash points.
    let out_g = root.join("out-golden");
    let st_g = root.join("st-golden");
    copy_dir(&out1, &out_g);
    copy_dir(&st1, &st_g);
    let (code, stderr) = run_batch(&full, &out_g, Some(&st_g), 1, false, None);
    assert_eq!(code, Some(0), "golden warm run: {stderr}");
    let writes: u64 = stderr
        .lines()
        .find(|l| l.starts_with("durability: "))
        .and_then(|l| l.trim_start_matches("durability: ").split_whitespace().next())
        .and_then(|t| t.parse().ok())
        .expect("durability summary");
    assert!(writes >= 3, "warm run too small to exercise crash points");
    let golden_out = snapshot(&out_g);
    let golden_state = snapshot(&st_g);

    for k in 1..=writes {
        let out_k = root.join(format!("out-k{k}"));
        let st_k = root.join(format!("st-k{k}"));
        copy_dir(&out1, &out_k);
        copy_dir(&st1, &st_k);

        let mut cmd = bin();
        cmd.args(["batch", "--secret", "incr-suite-secret", "--jobs", "2"])
            .arg("--state")
            .arg(&st_k)
            .arg("--out-dir")
            .arg(&out_k)
            .arg(&full)
            .env("CONFANON_CRASH_AFTER", k.to_string());
        let out = cmd.output().expect("run crash batch");
        assert_ne!(out.status.code(), Some(0), "k={k}: crash run must not exit cleanly");

        // No staging residue anywhere: the torn write discipline covers
        // the state directory as much as the output directory.
        for dir in [&out_k, &st_k] {
            assert!(
                !snapshot(dir).keys().any(|p| p.ends_with(".fsx-tmp")),
                "k={k}: staging residue under {}",
                dir.display()
            );
        }

        let (code, stderr) = run_batch(&full, &out_k, Some(&st_k), 1, true, None);
        assert_eq!(code, Some(0), "k={k}: resume failed: {stderr}");
        assert_eq!(
            snapshot(&out_k),
            golden_out,
            "k={k}: resumed outputs differ from the golden warm run"
        );
        assert_eq!(
            snapshot(&st_k),
            golden_state,
            "k={k}: resumed state differs from the golden warm run"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

// ---- watermark edge cases ---------------------------------------------

/// The anonymized form of the `12.126.236.17` neighbor in a released
/// file: the token after `neighbor` on the `remote-as 701` line.
fn neighbor_token(out_dir: &Path, name: &str) -> String {
    let text = std::fs::read_to_string(out_dir.join(format!("{name}.anon")))
        .unwrap_or_else(|e| panic!("{name}.anon: {e}"));
    for line in text.lines() {
        let mut it = line.split_whitespace();
        if it.next() == Some("neighbor") {
            if let Some(tok) = it.next() {
                return tok.to_string();
            }
        }
    }
    panic!("{name}.anon has no neighbor line:\n{text}");
}

#[test]
fn edited_file_is_reprocessed_and_keeps_its_old_mappings() {
    let root = tmpdir("edited");
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).expect("mk corpus");
    std::fs::write(
        corpus.join("a.cfg"),
        "hostname alpha.example.com\nrouter bgp 65001\n neighbor 12.126.236.17 remote-as 701\n",
    )
    .expect("write a");
    std::fs::write(
        corpus.join("b.cfg"),
        "hostname bravo.example.com\nrouter bgp 65002\n neighbor 12.126.236.17 remote-as 701\n",
    )
    .expect("write b");

    let out = root.join("out");
    let st = root.join("st");
    let (code, stderr) = run_batch(&corpus, &out, Some(&st), 1, false, None);
    assert_eq!(code, Some(0), "session 1: {stderr}");
    let a_before = std::fs::read(out.join("a.cfg.anon")).expect("a.anon");
    let tok_before = neighbor_token(&out, "b.cfg");
    assert_eq!(tok_before, neighbor_token(&out, "a.cfg"), "shared address, shared mapping");

    // Edit b.cfg: same name, new digest. It must be re-processed, and
    // the shared address must keep the session-1 mapping.
    std::fs::write(
        corpus.join("b.cfg"),
        "hostname bravo.example.com\nrouter bgp 65002\n neighbor 12.126.236.17 remote-as 701\n\
         interface Ethernet1\n ip address 12.126.240.9 255.255.255.0\n",
    )
    .expect("edit b");
    let m = root.join("m.json");
    let (code, stderr) = run_batch(&corpus, &out, Some(&st), 1, false, Some(&m));
    assert_eq!(code, Some(0), "warm run: {stderr}");
    let block = state_block(&m);
    assert_eq!(state_u64(&block, "files_skipped"), 1, "only a.cfg is unchanged");
    assert_eq!(state_u64(&block, "files_processed"), 1, "b.cfg must re-process");
    assert_eq!(
        std::fs::read(out.join("a.cfg.anon")).expect("a.anon"),
        a_before,
        "the unchanged file must not be rewritten"
    );
    assert_eq!(
        neighbor_token(&out, "b.cfg"),
        tok_before,
        "the edited file must keep the previously issued mapping"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleted_file_mappings_survive_in_state() {
    let root = tmpdir("deleted");
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).expect("mk corpus");
    let b_text = "hostname bravo.example.com\nrouter bgp 65002\n neighbor 12.126.236.17 remote-as 701\n";
    std::fs::write(corpus.join("a.cfg"), "hostname alpha.example.com\n ip route 10.20.30.0 255.255.255.0 Null0\n")
        .expect("write a");
    std::fs::write(corpus.join("b.cfg"), b_text).expect("write b");

    let out = root.join("out");
    let st = root.join("st");
    let (code, stderr) = run_batch(&corpus, &out, Some(&st), 1, false, None);
    assert_eq!(code, Some(0), "session 1: {stderr}");
    let b_anon = std::fs::read(out.join("b.cfg.anon")).expect("b.anon");
    let journal_before = load_state(&st).journal.len();

    // Delete b.cfg. The warm run prunes its released output (the new
    // manifest no longer vouches for it) and drops its watermark, but
    // the identifier journal keeps every mapping ever issued.
    std::fs::remove_file(corpus.join("b.cfg")).expect("rm b");
    let (code, stderr) = run_batch(&corpus, &out, Some(&st), 1, false, None);
    assert_eq!(code, Some(0), "after delete: {stderr}");
    assert!(!out.join("b.cfg.anon").exists(), "pruned output must be gone");
    let state = load_state(&st);
    assert!(!state.files.contains_key("b.cfg"), "deleted file keeps no watermark");
    assert_eq!(
        state.journal.len(),
        journal_before,
        "the journal must retain the deleted file's mappings"
    );

    // Restore b.cfg with identical content: its output must come back
    // byte-identical — the mappings survived the deletion.
    std::fs::write(corpus.join("b.cfg"), b_text).expect("restore b");
    let (code, stderr) = run_batch(&corpus, &out, Some(&st), 1, false, None);
    assert_eq!(code, Some(0), "after restore: {stderr}");
    assert_eq!(
        std::fs::read(out.join("b.cfg.anon")).expect("b.anon"),
        b_anon,
        "a restored file must reproduce its session-1 output exactly"
    );
    let _ = std::fs::remove_dir_all(&root);
}

fn load_state(dir: &Path) -> AnonState {
    let path = dir.join("state.json");
    let text = std::fs::read_to_string(&path).expect("read state.json");
    AnonState::from_json_str(&path.display().to_string(), &text).expect("valid state")
}

// ---- the split-session property (library level) -----------------------

/// A deterministic mini-corpus from one seed: four configs exercising
/// the IPv4 trie, the IPv6 trie, ASN permutation, and token hashing.
fn corpus_from_seed(seed: u64) -> Vec<(String, String)> {
    (0..4u64)
        .map(|i| {
            let s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i * 0x1234_5677);
            let a = ((s >> 32) as u32) | 0x0100_0000; // avoid 0.0.0.0/8
            let b = (s as u32) | 0x0100_0000;
            let asn = (s % 64000 + 1) as u16;
            let peer_asn = ((s >> 17) % 64000 + 1) as u16;
            let v6a = (s >> 8) & 0xffff;
            let v6b = s & 0xffff;
            let text = format!(
                "hostname r{i}.s{}.example.com\n\
                 router bgp {asn}\n \
                 neighbor {}.{}.{}.{} remote-as {peer_asn}\n\
                 interface Ethernet0\n \
                 ip address {}.{}.{}.{} 255.255.255.0\n\
                 ipv6 route 2001:db8:{v6a:x}::/48 2001:db8::{v6b:x}\n",
                s % 1000,
                a >> 24,
                (a >> 16) & 255,
                (a >> 8) & 255,
                a & 255,
                b >> 24,
                (b >> 16) & 255,
                (b >> 8) & 255,
                b & 255,
            );
            (format!("r{i}.cfg"), text)
        })
        .collect()
}

confanon_testkit::props! {
    cases = 256;

    /// Save → load → anonymize round-trips exactly: a corpus split at a
    /// seeded cut point and run as two sessions — serializing the state
    /// between them through actual JSON bytes — equals one continuous
    /// run, file for file, and leaves identical trie structure.
    fn split_sessions_equal_one_continuous_run(
        seed in confanon_testkit::props::any::<u64>(),
        cut_raw in confanon_testkit::props::any::<u16>(),
    ) {
        let corpus = corpus_from_seed(seed);
        let cut = (cut_raw as usize) % (corpus.len() + 1);
        let secret = seed.to_be_bytes().to_vec();

        // One continuous session.
        let mut cont = Anonymizer::new(AnonymizerConfig::new(secret.clone()));
        let cont_out: Vec<String> = corpus
            .iter()
            .map(|(_, t)| cont.anonymize_config(t).text)
            .collect();

        // Two sessions with a serialized state hand-off at `cut`.
        let mut s1 = Anonymizer::new(AnonymizerConfig::new(secret.clone()));
        let s1_out: Vec<String> = corpus[..cut]
            .iter()
            .map(|(_, t)| s1.anonymize_config(t).text)
            .collect();
        let fp = RunManifest::fingerprint(&secret);
        let state = AnonState::capture(&s1, fp.clone(), BTreeMap::new());

        // The hand-off goes through bytes, and those bytes are stable:
        // parse(to_bytes) re-serializes identically.
        let bytes = state.to_bytes();
        let text = String::from_utf8(bytes.clone()).expect("state is utf-8");
        let reloaded = AnonState::from_json_str("prop", &text).expect("state parses");
        assert_eq!(reloaded.to_bytes(), bytes, "seed {seed}: state bytes unstable");
        reloaded
            .check_owner("prop", &fp, &s1.perm_fingerprint())
            .expect("owner check");

        let mut s2 = Anonymizer::new(AnonymizerConfig::new(secret.clone()));
        reloaded.restore_into("prop", &mut s2).expect("replay");

        // Sticky mappings: re-anonymizing session 1's inputs through the
        // restored state mutates nothing and reproduces the outputs.
        for (i, (_, t)) in corpus[..cut].iter().enumerate() {
            assert_eq!(
                s2.anonymize_config(t).text,
                s1_out[i],
                "seed {seed} cut {cut}: session-1 file {i} not reproduced"
            );
        }
        // And the tail equals the continuous run exactly.
        for (i, (_, t)) in corpus[cut..].iter().enumerate() {
            assert_eq!(
                s2.anonymize_config(t).text,
                cont_out[cut + i],
                "seed {seed} cut {cut}: tail file {} diverged",
                cut + i
            );
        }
        // Final trie structure is identical to the continuous session's.
        assert_eq!(s2.trie_node_counts(), cont.trie_node_counts(), "seed {seed}");
        assert_eq!(s2.trie_digests(), cont.trie_digests(), "seed {seed} cut {cut}");
        assert_eq!(s2.total_stats(), cont.total_stats(), "seed {seed} cut {cut}");
    }
}
