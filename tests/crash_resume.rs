//! The crash/resume property suite (the tentpole acceptance criterion).
//!
//! For every deterministic crash point k of a corpus run — enumerated
//! by counting the durable writes of an uninterrupted run, then
//! re-running with `CONFANON_CRASH_AFTER=k` — the suite asserts:
//!
//! 1. the crashed process died hard (SIGABRT, no unwinding);
//! 2. at the crash point, the output directory satisfies the journal
//!    invariant: it contains nothing but `run_manifest.json` and
//!    `*.anon` files, and every `.anon` file's bytes match the digest
//!    the journal recorded for it *before* the bytes appeared;
//! 3. `--resume` completes with exit 0 and the final output directory —
//!    released bytes *and* manifest — is byte-identical to the golden
//!    uninterrupted run, regardless of the `--jobs` value used on
//!    either side of the crash.
//!
//! Plus the protocol edges: resume refuses a missing journal, a wrong
//! owner secret, and a changed corpus; a completed run re-resumes
//! idempotently; and a leak-gated run crash-resumes to the same exit 4
//! with its quarantine intact.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use confanon::core::RunManifest;
use confanon::crypto::Sha1;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_confanon"))
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("confanon-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mktemp");
    d
}

/// Recursively collects `path → bytes` for every file under `dir`,
/// keyed by the path relative to `dir`.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for e in std::fs::read_dir(dir).expect("read_dir").flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(root, &p, out);
            } else {
                let rel = p
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .to_string();
                out.insert(rel, std::fs::read(&p).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

/// Parses the completed-durable-write count from the batch stderr
/// summary ("durability: N atomic write(s), ...").
fn atomic_writes_from_stderr(stderr: &str) -> u64 {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("durability: "))
        .expect("durability summary line");
    line.trim_start_matches("durability: ")
        .split_whitespace()
        .next()
        .expect("count token")
        .parse()
        .expect("numeric count")
}

/// The journal invariant at an arbitrary observable point: the output
/// directory holds only the manifest and `.anon` files, and every
/// `.anon` file's bytes hash to the digest the journal vouches for.
/// (The converse — journal entries without bytes — is the legal
/// over-claim a crash between journal and publish leaves behind.)
fn assert_journal_invariant(out_dir: &Path, context: &str) {
    let files = snapshot(out_dir);
    let manifest_text = files
        .get("run_manifest.json")
        .map(|b| String::from_utf8_lossy(b).to_string())
        .unwrap_or_else(|| panic!("{context}: run_manifest.json missing"));
    let manifest = RunManifest::from_json_str(&manifest_text)
        .unwrap_or_else(|e| panic!("{context}: manifest torn or invalid: {e}"));
    for (rel, bytes) in &files {
        if rel == "run_manifest.json" {
            continue;
        }
        let name = rel.strip_suffix(".anon").unwrap_or_else(|| {
            panic!("{context}: unexpected file {rel} in --out-dir")
        });
        let entry = manifest
            .entry(name)
            .unwrap_or_else(|| panic!("{context}: {rel} present but unjournaled"));
        let digest = Sha1::to_hex(&Sha1::digest(bytes));
        assert_eq!(
            entry.digest.as_deref(),
            Some(digest.as_str()),
            "{context}: {rel} bytes do not match the journaled digest"
        );
    }
}

/// Runs `batch` over `corpus` into `out_dir`; returns (exit code,
/// stderr). `crash_after` sets `CONFANON_CRASH_AFTER`; `resume` adds
/// `--resume`.
fn run_batch(
    corpus: &Path,
    out_dir: &Path,
    jobs: u32,
    crash_after: Option<u64>,
    resume: bool,
    extra: &[&str],
) -> (Option<i32>, String) {
    let mut cmd = bin();
    cmd.args(["batch", "--secret", "crash-suite-secret", "--jobs", &jobs.to_string()]);
    if resume {
        cmd.arg("--resume");
    }
    cmd.args(extra);
    cmd.arg("--out-dir").arg(out_dir).arg(corpus);
    match crash_after {
        Some(k) => cmd.env("CONFANON_CRASH_AFTER", k.to_string()),
        None => cmd.env_remove("CONFANON_CRASH_AFTER"),
    };
    let out = cmd.output().expect("run batch");
    (out.status.code(), String::from_utf8_lossy(&out.stderr).to_string())
}

/// A small generated corpus (one network, a handful of routers).
fn generate_corpus(root: &Path) -> PathBuf {
    let corpus = root.join("corpus");
    let status = bin()
        .args(["generate", "--networks", "1", "--routers", "5", "--seed", "1789"])
        .arg("--out-dir")
        .arg(&corpus)
        .status()
        .expect("run generate");
    assert!(status.success());
    corpus
}

#[test]
fn every_crash_point_resumes_to_the_golden_run() {
    let root = tmpdir("every-point");
    let corpus = generate_corpus(&root);

    // Golden uninterrupted run; its durable-write count enumerates the
    // crash points.
    let golden_dir = root.join("golden");
    let (code, stderr) = run_batch(&corpus, &golden_dir, 1, None, false, &[]);
    assert_eq!(code, Some(0), "golden run: {stderr}");
    let writes = atomic_writes_from_stderr(&stderr);
    assert!(writes >= 3, "corpus too small to exercise crash points");
    let golden = snapshot(&golden_dir);

    for k in 1..=writes {
        // Alternate the jobs value on both sides of the crash: the
        // publish loop is sequential, so crash point k is the same
        // state at any worker count, and resume must be jobs-agnostic.
        let (crash_jobs, resume_jobs) = if k % 2 == 0 { (4, 1) } else { (1, 4) };
        let out_dir = root.join(format!("out-k{k}"));

        let (code, stderr) = run_batch(&corpus, &out_dir, crash_jobs, Some(k), false, &[]);
        assert_ne!(code, Some(0), "k={k}: crash run must not exit cleanly");
        assert!(
            stderr.contains("CONFANON_CRASH_AFTER"),
            "k={k}: missing crash marker in stderr: {stderr}"
        );
        assert_journal_invariant(&out_dir, &format!("k={k} post-crash"));

        let (code, stderr) = run_batch(&corpus, &out_dir, resume_jobs, None, true, &[]);
        assert_eq!(code, Some(0), "k={k}: resume failed: {stderr}");
        assert_journal_invariant(&out_dir, &format!("k={k} post-resume"));
        assert_eq!(
            snapshot(&out_dir),
            golden,
            "k={k}: resumed output differs from the golden uninterrupted run"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn state_runs_crash_resume_through_every_point() {
    // `--state` appends one durable write (state.json, written after
    // the manifest is final) to the run's crash-point enumeration. From
    // every point — including a crash squarely *between* the last
    // output/manifest write and the state write — `--resume --state`
    // must reach the golden artifacts: released bytes, manifest, and
    // the state document itself.
    let root = tmpdir("state-points");
    let corpus = generate_corpus(&root);

    let golden_dir = root.join("golden");
    let golden_state = root.join("golden-state");
    let gs = golden_state.to_string_lossy().to_string();
    let (code, stderr) =
        run_batch(&corpus, &golden_dir, 1, None, false, &["--state", &gs]);
    assert_eq!(code, Some(0), "golden run: {stderr}");
    let writes = atomic_writes_from_stderr(&stderr);
    assert!(writes >= 4, "state run too small to exercise crash points");
    let golden = snapshot(&golden_dir);
    let golden_st = snapshot(&golden_state);
    assert!(
        golden_st.contains_key("state.json"),
        "state run must persist state.json"
    );

    for k in 1..=writes {
        let out_dir = root.join(format!("out-k{k}"));
        let st_dir = root.join(format!("st-k{k}"));
        let st = st_dir.to_string_lossy().to_string();

        let (code, stderr) =
            run_batch(&corpus, &out_dir, 2, Some(k), false, &["--state", &st]);
        assert_ne!(code, Some(0), "k={k}: crash run must not exit cleanly: {stderr}");
        assert_journal_invariant(&out_dir, &format!("state k={k} post-crash"));
        assert!(
            !snapshot(&st_dir).keys().any(|p| p.ends_with(".fsx-tmp")),
            "k={k}: staging residue in the state directory"
        );

        let (code, stderr) =
            run_batch(&corpus, &out_dir, 1, None, true, &["--state", &st]);
        assert_eq!(code, Some(0), "k={k}: resume failed: {stderr}");
        assert_eq!(
            snapshot(&out_dir),
            golden,
            "k={k}: resumed outputs differ from the golden run"
        );
        assert_eq!(
            snapshot(&st_dir),
            golden_st,
            "k={k}: resumed state differs from the golden run"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_protocol_rejects_bad_preconditions() {
    let root = tmpdir("protocol");
    let corpus = generate_corpus(&root);
    let out_dir = root.join("out");

    // Nothing to resume: no journal in the output directory.
    let (code, stderr) = run_batch(&corpus, &out_dir, 1, None, true, &[]);
    assert_eq!(code, Some(2), "missing journal must be a usage error: {stderr}");
    assert!(stderr.contains("nothing to resume"), "stderr: {stderr}");

    // Interrupt a run, then resume with the wrong secret.
    let (code, _) = run_batch(&corpus, &out_dir, 1, Some(2), false, &[]);
    assert_ne!(code, Some(0));
    let out = bin()
        .args(["batch", "--secret", "some-other-secret", "--resume", "--jobs", "1"])
        .arg("--out-dir")
        .arg(&out_dir)
        .arg(&corpus)
        .output()
        .expect("run batch");
    assert_eq!(out.status.code(), Some(2), "wrong secret must be refused");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fingerprint"),
        "stderr should name the fingerprint mismatch"
    );

    // Resume with a changed corpus (an extra file) is refused.
    std::fs::write(corpus.join("added-later.cfg"), "hostname late\n").expect("write");
    let (code, stderr) = run_batch(&corpus, &out_dir, 1, None, true, &[]);
    assert_eq!(code, Some(2), "changed corpus must be refused: {stderr}");
    assert!(stderr.contains("corpus file list changed"), "stderr: {stderr}");
    std::fs::remove_file(corpus.join("added-later.cfg")).expect("rm");

    // --resume without --out-dir is a usage error.
    let out = bin()
        .args(["batch", "--secret", "s", "--resume"])
        .arg(&corpus)
        .output()
        .expect("run batch");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn completed_run_re_resumes_idempotently() {
    let root = tmpdir("idempotent");
    let corpus = generate_corpus(&root);
    let out_dir = root.join("out");

    let (code, stderr) = run_batch(&corpus, &out_dir, 2, None, false, &[]);
    assert_eq!(code, Some(0), "{stderr}");
    let done = snapshot(&out_dir);

    let (code, stderr) = run_batch(&corpus, &out_dir, 2, None, true, &[]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(
        stderr.contains("released 0 file(s)"),
        "everything should be skip-verified: {stderr}"
    );
    assert_eq!(snapshot(&out_dir), done, "re-resume must not change a byte");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn leak_gated_run_crash_resumes_with_quarantine_intact() {
    // A planted leak (the cli.rs ablation scenario): with the
    // neighbor-remote-as rule disabled, a public ASN survives and the
    // gate quarantines. The gate verdict must survive a crash/resume.
    let root = tmpdir("leak-gate");
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).expect("mk corpus");
    std::fs::write(
        corpus.join("a.cfg"),
        "router bgp 701\n neighbor 10.0.0.2 remote-as 701\n",
    )
    .expect("write");
    std::fs::write(
        corpus.join("b.cfg"),
        "router bgp 65001\n neighbor 10.0.0.1 remote-as 701\n",
    )
    .expect("write");
    let extra = ["--disable-rule", "neighbor-remote-as"];

    let out_dir = root.join("out");
    let (code, stderr) = run_batch(&corpus, &out_dir, 1, Some(2), false, &extra);
    assert_ne!(code, Some(0), "crash run must not exit cleanly: {stderr}");
    assert_journal_invariant(&out_dir, "leak-gate post-crash");

    let (code, stderr) = run_batch(&corpus, &out_dir, 1, None, true, &extra);
    assert_eq!(code, Some(4), "resume must re-reach the leak-gated exit: {stderr}");
    let quarantine = {
        let mut s = out_dir.as_os_str().to_os_string();
        s.push("-quarantine");
        PathBuf::from(s)
    };
    let report = std::fs::read_to_string(quarantine.join("leak_report.json"))
        .expect("leak report exists after resume");
    assert!(report.contains("confanon-leak-report-v1"));
    // Quarantined bytes are in the quarantine dir, never the out dir.
    assert!(!snapshot(&out_dir).keys().any(|k| {
        k != "run_manifest.json" && std::fs::read_to_string(out_dir.join(k)).is_ok_and(|t| t.contains("701"))
    }));
    let _ = std::fs::remove_dir_all(&root);
}
