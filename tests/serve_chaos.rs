//! Hostile-wire and self-healing suite for `confanon serve` (DESIGN
//! §15), driven end-to-end through the real binary, the independent
//! `CONFANON/1` wire client, and the seeded fault-injecting proxy from
//! `confanon_testkit::netchaos`.
//!
//! What is proven here, each against a live daemon process:
//!
//! 1. **Chaos survival** — a hostile client hammering the daemon
//!    through the seeded chaos proxy (torn frames, dribbles, garbage,
//!    duplicated bytes, mid-frame disconnects) never takes the daemon
//!    down and never perturbs a healthy tenant: the healthy tenant's
//!    responses stay byte-identical to a solo `confanon batch` run,
//!    and the drain still exits 0. Deterministic per seed.
//! 2. **Lossless transparency** — the dribble-only chaos profile
//!    (content-preserving) is invisible to the protocol: replies
//!    through the proxy equal replies over a direct connection.
//! 3. **Idle timeout** — a byte-silent connection is closed after
//!    `idle_timeout_ms` with a classified error frame.
//! 4. **Read deadline** — a slowloris connection that dribbles a frame
//!    forever is closed after `read_deadline_ms` even though it keeps
//!    making byte progress.
//! 5. **Per-tenant quota** — a payload over `max_request_bytes` is
//!    rejected with a quota error *without* closing the connection or
//!    reaching the worker.
//! 6. **Load shedding** — arrivals past `max_connections` get one
//!    retriable `BUSY` frame carrying the `retry-after-ms` hint.
//! 7. **Degrade + self-heal** — a tenant whose state store fails
//!    permanently keeps serving (`DEGRADED` frames, correct payload),
//!    and the recovery probe restores `OK` service once the store
//!    heals; a state-quarantined tenant likewise un-quarantines once
//!    its torn state is cleared. Both flows feed the
//!    `daemon.faults` counters of the stats frame.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use confanon_testkit::json::Json;
use confanon_testkit::netchaos::{ChaosProxy, Profile};
use confanon_testkit::serveclient::{Backoff, ServeClient};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_confanon"))
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("confanon-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mktemp");
    d
}

/// Writes a `confanon.toml` with one `[tenant.NAME]` section per entry
/// (secret convention `<name>-secret`), `extra` lines first, and
/// `tenant_extra` lines inside every tenant section.
fn write_config(path: &Path, tenants: &[(&str, &Path)], extra: &str, tenant_extra: &str) {
    let mut text = String::from(extra);
    for (name, dir) in tenants {
        text.push_str(&format!(
            "[tenant.{name}]\nsecret = \"{name}-secret\"\nstate_dir = \"{}\"\n{tenant_extra}",
            dir.display()
        ));
    }
    std::fs::write(path, text).expect("write config");
}

/// A live daemon child with its discovered endpoint. Killed on drop so
/// a failing assertion never leaks a listener.
struct Daemon {
    child: Child,
    endpoint: String,
}

impl Daemon {
    fn spawn(config: &Path, port_file: &Path) -> Daemon {
        let _ = std::fs::remove_file(port_file);
        let mut child = bin()
            .arg("serve")
            .arg("--config")
            .arg(config)
            .args(["--listen", "127.0.0.1:0"])
            .arg("--port-file")
            .arg(port_file)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Ok(text) = std::fs::read_to_string(port_file) {
                let endpoint = text.trim().to_string();
                if !endpoint.is_empty() {
                    return Daemon { child, endpoint };
                }
            }
            if let Ok(Some(status)) = child.try_wait() {
                panic!("daemon exited before advertising: {status}");
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                let _ = child.wait();
                panic!("daemon never wrote its port file");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn connect(&self) -> ServeClient {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match ServeClient::connect(&self.endpoint) {
                Ok(c) => return c,
                Err(e) if Instant::now() > deadline => panic!("connect {}: {e}", self.endpoint),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Waits (bounded) for the child to exit and returns its status.
    fn wait(mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status;
            }
            if Instant::now() > deadline {
                let _ = self.child.kill();
                let _ = self.child.wait();
                panic!("daemon did not exit within the drain deadline");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Generates a deterministic flat corpus: `(name, bytes)` pairs in
/// sorted-name order.
fn flat_corpus(root: &Path, tag: &str, seed: u64, routers: usize) -> Vec<(String, Vec<u8>)> {
    let gen = root.join(format!("gen-{tag}"));
    let status = bin()
        .args(["generate", "--networks", "1"])
        .args(["--routers", &routers.to_string()])
        .args(["--seed", &seed.to_string()])
        .arg("--out-dir")
        .arg(&gen)
        .stderr(Stdio::null())
        .status()
        .expect("run generate");
    assert!(status.success(), "generate failed");
    let mut files = Vec::new();
    collect_cfgs(&gen, &mut files);
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().expect("name").to_string_lossy().into_owned();
            (name, std::fs::read(&p).expect("read cfg"))
        })
        .collect()
}

fn collect_cfgs(dir: &Path, out: &mut Vec<PathBuf>) {
    for e in std::fs::read_dir(dir).expect("read_dir").flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_cfgs(&p, out);
        } else if p.extension().is_some_and(|x| x == "cfg") {
            out.push(p);
        }
    }
}

/// Runs `confanon batch` solo over `files` and returns `name → bytes`
/// of the released outputs — the ground truth the daemon must match.
fn solo_batch(
    root: &Path,
    tag: &str,
    secret: &str,
    files: &[(String, Vec<u8>)],
) -> BTreeMap<String, Vec<u8>> {
    let corpus = root.join(format!("batch-{tag}-in"));
    std::fs::create_dir_all(&corpus).expect("mk corpus");
    for (name, bytes) in files {
        std::fs::write(corpus.join(name), bytes).expect("write input");
    }
    let out = root.join(format!("batch-{tag}-out"));
    let status = bin()
        .args(["batch", "--secret", secret])
        .arg("--out-dir")
        .arg(&out)
        .arg(&corpus)
        .stderr(Stdio::null())
        .status()
        .expect("run batch");
    assert!(status.success(), "solo batch failed for {tag}");
    let mut released = BTreeMap::new();
    for e in std::fs::read_dir(&out).expect("read out").flatten() {
        let p = e.path();
        if p.extension().is_some_and(|x| x == "anon") {
            let name = p.file_stem().expect("stem").to_string_lossy().into_owned();
            released.insert(name, std::fs::read(&p).expect("read anon"));
        }
    }
    released
}

/// Reads one `CONFANON/1` response frame from a raw socket (waiting up
/// to `deadline`), returning `(status, payload)`. Panics on a frame the
/// daemon should never emit malformed.
fn read_raw_response(stream: &mut TcpStream, deadline: Duration) -> (String, Vec<u8>) {
    stream
        .set_read_timeout(Some(deadline))
        .expect("set timeout");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let start = Instant::now();
    loop {
        // Parse as soon as the frame is complete.
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let header = std::str::from_utf8(&buf[..nl]).expect("utf8 header");
            let mut it = header.split(' ');
            assert_eq!(it.next(), Some("CONFANON/1"), "header: {header}");
            let status = it.next().expect("status").to_string();
            let len: usize = it.next().expect("len").parse().expect("len parses");
            if buf.len() >= nl + 1 + len {
                return (status, buf[nl + 1..nl + 1 + len].to_vec());
            }
        }
        assert!(
            start.elapsed() < deadline + Duration::from_secs(5),
            "no complete response frame within the deadline"
        );
        match stream.read(&mut chunk) {
            Ok(0) => panic!("connection closed before a complete response frame"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("read: {e}"),
        }
    }
}

fn stats_doc(c: &mut ServeClient) -> Json {
    let stats = c.stats().expect("stats frame");
    assert_eq!(stats.status, "OK");
    let doc = Json::parse(&stats.text()).expect("stats json");
    confanon::obs::validate_serve_metrics(&doc).expect("stats frame validates");
    doc
}

fn fault_counter(doc: &Json, key: &str) -> u64 {
    doc.get("daemon")
        .and_then(|d| d.get("faults"))
        .and_then(|f| f.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats frame lacks daemon.faults.{key}"))
}

fn tenant_health(doc: &Json, tenant: &str) -> String {
    doc.get("tenants")
        .and_then(|t| t.get(tenant))
        .and_then(|s| s.get("health"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("stats frame lacks tenants.{tenant}.health"))
        .to_string()
}

/// Polls the stats frame until `tenant`'s health equals `want` (the
/// recovery probes run on their own clock) or the deadline passes.
fn await_health(c: &mut ServeClient, tenant: &str, want: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let doc = stats_doc(c);
        if tenant_health(&doc, tenant) == want {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "tenant {tenant} never reached health {want:?}; last: {}",
            doc.to_string_pretty()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------
// 1. Chaos survival: hostile proxy traffic never perturbs healthy work
// ---------------------------------------------------------------------

confanon_testkit::props! {
    cases = 3;

    /// A hostile client hammers the daemon through the seeded chaos
    /// proxy while a healthy client works directly. Every fault
    /// schedule is a pure function of the seed. The healthy tenant's
    /// replies must be byte-identical to a solo batch run, the stats
    /// frame must stay valid, and the drain must exit 0.
    fn daemon_survives_seeded_wire_chaos(seed in 0u64..1_000_000) {
        let root = std::env::temp_dir().join(format!(
            "confanon-chaos-storm-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mktemp");

        let alpha_files = flat_corpus(&root, "alpha", seed.wrapping_add(11), 3);
        let alpha_golden = solo_batch(&root, "alpha", "alpha-secret", &alpha_files);

        let config = root.join("confanon.toml");
        // Short reaping clocks so chaos-stalled connections are
        // recycled inside the test budget.
        write_config(
            &config,
            &[
                ("alpha", &root.join("state-alpha")),
                ("mallory", &root.join("state-mallory")),
            ],
            "idle_timeout_ms = 1500\nread_deadline_ms = 700\n",
            "",
        );
        let daemon = Daemon::spawn(&config, &root.join("port"));
        let mut proxy = ChaosProxy::spawn(seed, Profile::hostile(), &daemon.endpoint)
            .expect("spawn chaos proxy");

        // The hostile leg: valid requests launched into the mutating
        // proxy. Whatever comes back — errors, EOFs, garbage replies —
        // is irrelevant; only daemon survival is asserted.
        let proxy_addr = proxy.addr().to_string();
        let storm = std::thread::spawn(move || {
            for i in 0..12u64 {
                let Ok(mut c) = ServeClient::connect(&proxy_addr) else {
                    continue;
                };
                let payload = format!("hostname storm{i}\nrouter bgp 65{i:03}\n");
                let _ = c.anon("mallory", &format!("s{i}.cfg"), payload.as_bytes());
            }
        });

        // The healthy leg, direct to the daemon, interleaved with the
        // storm.
        let mut healthy = daemon.connect();
        for (name, bytes) in &alpha_files {
            let reply = healthy
                .anon_with_retry("alpha", name, bytes, 100, Duration::from_millis(20))
                .expect("healthy request");
            assert_eq!(reply.status, "OK", "seed {seed}: {name}: {}", reply.text());
            let want = alpha_golden
                .get(name)
                .unwrap_or_else(|| panic!("{name}: missing from solo batch"));
            assert_eq!(
                &reply.payload, want,
                "seed {seed}: {name} diverges from solo batch under chaos"
            );
        }
        storm.join().expect("storm thread");

        // The stats frame is still well-formed mid-storm and carries
        // the full fault taxonomy.
        let doc = stats_doc(&mut healthy);
        assert_eq!(tenant_health(&doc, "alpha"), "serving");

        proxy.stop();
        assert_eq!(healthy.shutdown().expect("shutdown").status, "BYE");
        let status = daemon.wait();
        assert!(status.success(), "seed {seed}: drain exit: {status}");
        let _ = std::fs::remove_dir_all(&root);
    }
}

// ---------------------------------------------------------------------
// 2. Lossless chaos profile is protocol-invisible
// ---------------------------------------------------------------------

#[test]
fn lossless_proxy_is_transparent_to_the_protocol() {
    let root = tmpdir("lossless");
    let config = root.join("confanon.toml");
    write_config(&config, &[("alpha", &root.join("state-alpha"))], "", "");
    let daemon = Daemon::spawn(&config, &root.join("port"));
    let mut proxy =
        ChaosProxy::spawn(424242, Profile::lossless(), &daemon.endpoint).expect("spawn proxy");

    let good = b"hostname r1\nrouter bgp 65001\n neighbor 10.3.2.1 remote-as 1239\n";
    let mut direct = daemon.connect();
    let want = direct.anon("alpha", "r1.cfg", good).expect("direct");
    assert_eq!(want.status, "OK");

    // Same request through the dribbling proxy: torn into tiny
    // chunks with pauses, but content-preserving — the reply must be
    // byte-identical (sticky mappings).
    let mut proxied = ServeClient::connect(proxy.addr()).expect("connect proxy");
    let reply = proxied.anon("alpha", "r1.cfg", good).expect("proxied");
    assert_eq!(reply.status, "OK", "payload: {}", reply.text());
    assert_eq!(reply.payload, want.payload, "lossless dribble changed bytes");

    proxy.stop();
    assert_eq!(direct.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// 3 + 4. Idle timeout and read deadline
// ---------------------------------------------------------------------

#[test]
fn byte_silent_connection_is_closed_at_the_idle_timeout() {
    let root = tmpdir("idle");
    let config = root.join("confanon.toml");
    write_config(
        &config,
        &[("alpha", &root.join("state-alpha"))],
        "idle_timeout_ms = 300\nread_deadline_ms = 60000\n",
        "",
    );
    let daemon = Daemon::spawn(&config, &root.join("port"));

    let mut idle = TcpStream::connect(&daemon.endpoint).expect("connect");
    let started = Instant::now();
    let (status, payload) = read_raw_response(&mut idle, Duration::from_secs(10));
    assert_eq!(status, "ERROR");
    let text = String::from_utf8_lossy(&payload).into_owned();
    assert!(text.contains("idle-timeout"), "payload: {text}");
    assert!(
        started.elapsed() >= Duration::from_millis(300),
        "closed before the idle budget elapsed"
    );

    // The close is visible in the fault counters, and the daemon is
    // still fully serviceable.
    let mut c = daemon.connect();
    let doc = stats_doc(&mut c);
    assert!(fault_counter(&doc, "idle_closed") >= 1);
    assert_eq!(c.ping().expect("ping").status, "OK");
    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dribbled_frame_is_closed_at_the_read_deadline() {
    let root = tmpdir("dribble");
    let config = root.join("confanon.toml");
    // Idle timeout long, read deadline short: only a frame-progress
    // clock can reap this connection, because the dribble keeps making
    // byte progress.
    write_config(
        &config,
        &[("alpha", &root.join("state-alpha"))],
        "idle_timeout_ms = 60000\nread_deadline_ms = 400\n",
        "",
    );
    let daemon = Daemon::spawn(&config, &root.join("port"));

    let mut slow = TcpStream::connect(&daemon.endpoint).expect("connect");
    // A valid frame start, dribbled one byte at a time, never
    // completed: classic slowloris.
    let partial = b"CONFANON/1 ANON alpha r1.cfg 64\nhostnam";
    for b in partial {
        let _ = slow.write_all(&[*b]);
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, payload) = read_raw_response(&mut slow, Duration::from_secs(10));
    assert_eq!(status, "ERROR");
    let text = String::from_utf8_lossy(&payload).into_owned();
    assert!(text.contains("read-deadline"), "payload: {text}");

    let mut c = daemon.connect();
    let doc = stats_doc(&mut c);
    assert!(fault_counter(&doc, "read_timeouts") >= 1);
    assert_eq!(c.ping().expect("ping").status, "OK");
    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// 5. Per-tenant request quota
// ---------------------------------------------------------------------

#[test]
fn oversized_payload_is_rejected_by_quota_without_closing_the_connection() {
    let root = tmpdir("quota");
    let config = root.join("confanon.toml");
    write_config(
        &config,
        &[("alpha", &root.join("state-alpha"))],
        "",
        "max_request_bytes = 256\n",
    );
    let daemon = Daemon::spawn(&config, &root.join("port"));
    let mut c = daemon.connect();

    let oversized = vec![b'x'; 1024];
    let rejected = c.anon("alpha", "big.cfg", &oversized).expect("oversized");
    assert_eq!(rejected.status, "ERROR");
    assert!(
        rejected.text().contains("quota-exceeded"),
        "payload: {}",
        rejected.text()
    );

    // Same connection, compliant payload: the quota rejection must not
    // have torn the session down.
    let ok = c
        .anon("alpha", "small.cfg", b"hostname r1\n")
        .expect("small");
    assert_eq!(ok.status, "OK", "payload: {}", ok.text());

    let doc = stats_doc(&mut c);
    assert!(fault_counter(&doc, "frames_rejected") >= 1);
    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// 6. Load shedding with a backoff hint
// ---------------------------------------------------------------------

#[test]
fn arrivals_past_the_connection_bound_are_shed_with_a_retry_hint() {
    let root = tmpdir("shed");
    let config = root.join("confanon.toml");
    write_config(
        &config,
        &[("alpha", &root.join("state-alpha"))],
        "max_connections = 1\nbusy_retry_hint_ms = 75\n",
        "",
    );
    let daemon = Daemon::spawn(&config, &root.join("port"));

    // Occupy the single slot (a served request proves it is live).
    let mut holder = daemon.connect();
    assert_eq!(holder.ping().expect("ping").status, "OK");

    // The next arrival gets one BUSY frame with the hint, then EOF.
    let mut shed = TcpStream::connect(&daemon.endpoint).expect("connect");
    let (status, payload) = read_raw_response(&mut shed, Duration::from_secs(10));
    assert_eq!(status, "BUSY");
    let text = String::from_utf8_lossy(&payload).into_owned();
    assert!(
        text.starts_with("retry-after-ms=75;"),
        "BUSY payload must lead with the hint: {text}"
    );
    drop(shed);

    // The seeded backoff client honors the hint end-to-end: freeing
    // the slot lets a reconnect-and-retry loop land.
    let doc = stats_doc(&mut holder);
    assert!(fault_counter(&doc, "connections_shed") >= 1);
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut backoff = Backoff::new(7, 10, 200);
    let reply = loop {
        if let Ok(mut c) = ServeClient::connect(&daemon.endpoint) {
            match c.anon_with_backoff("alpha", "r.cfg", b"hostname r\n", 5, &mut backoff) {
                Ok(r) if r.status == "OK" => break r,
                _ => {}
            }
        }
        assert!(Instant::now() < deadline, "slot never freed after drop");
        std::thread::sleep(backoff.next_delay(Some(75)));
    };
    assert_eq!(reply.status, "OK");

    let mut c = daemon.connect();
    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// 7. Degrade on permanent store failure, self-heal via recovery probes
// ---------------------------------------------------------------------

#[test]
fn permanent_store_failure_degrades_then_recovery_probe_heals() {
    let root = tmpdir("degrade");
    // The tenant's state_dir lives under a path component that is a
    // regular *file* — every flush fails permanently (not-a-directory
    // is not transient), which is the portable stand-in for ENOSPC.
    let blocker = root.join("blocker");
    std::fs::write(&blocker, b"occupied").expect("write blocker");
    let state_dir = blocker.join("state-alpha");

    let config = root.join("confanon.toml");
    write_config(
        &config,
        &[("alpha", &state_dir)],
        "recovery_probe_ms = 100\n",
        "",
    );
    let daemon = Daemon::spawn(&config, &root.join("port"));
    let mut c = daemon.connect();

    // First request: anonymization succeeds (resident mappings), the
    // per-request flush hits the dead store, the tenant degrades — and
    // the reply still carries the anonymized text under DEGRADED.
    let good = b"hostname r1\nrouter bgp 65001\n neighbor 10.3.2.1 remote-as 1239\n";
    let degraded = c.anon("alpha", "r1.cfg", good).expect("first request");
    assert_eq!(degraded.status, "DEGRADED", "payload: {}", degraded.text());
    assert!(!degraded.payload.is_empty(), "DEGRADED must carry the output");
    assert!(
        !degraded.text().contains("10.3.2.1"),
        "DEGRADED output must still be anonymized"
    );

    // Sticky even while degraded: a replay is byte-identical.
    let replay = c.anon("alpha", "r1.cfg", good).expect("replay");
    assert_eq!(replay.status, "DEGRADED");
    assert_eq!(replay.payload, degraded.payload);

    let doc = await_health(&mut c, "alpha", "degraded");
    assert!(fault_counter(&doc, "degraded_transitions") >= 1);

    // The CLI client treats DEGRADED as usable output: exit 0, payload
    // on stdout, the durability caveat on stderr.
    let out = bin()
        .args(["client", "--endpoint", &daemon.endpoint])
        .args(["anon", "--tenant", "alpha", "--name", "r1.cfg"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child.stdin.take().expect("stdin").write_all(good)?;
            child.wait_with_output()
        })
        .expect("run client");
    assert_eq!(out.status.code(), Some(0), "DEGRADED is usable output");
    assert_eq!(out.stdout, degraded.payload, "client stdout is the payload");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("degraded"),
        "stderr carries the durability warning"
    );

    // Heal the store: the recovery probe's flush must land within a
    // few probe intervals and restore plain OK service.
    std::fs::remove_file(&blocker).expect("remove blocker");
    let doc = await_health(&mut c, "alpha", "serving");
    assert!(fault_counter(&doc, "recoveries") >= 1);
    assert!(
        state_dir.join("state.json").exists(),
        "the healing flush must have persisted the state document"
    );
    let healed = c.anon("alpha", "r1.cfg", good).expect("healed request");
    assert_eq!(healed.status, "OK");
    assert_eq!(healed.payload, degraded.payload, "mappings survived the episode");

    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn state_quarantined_tenant_unquarantines_once_the_store_heals() {
    let root = tmpdir("requarantine");
    let state_dir = root.join("state-alpha");
    std::fs::create_dir_all(&state_dir).expect("mk state");
    let torn_path = state_dir.join("state.json");
    std::fs::write(&torn_path, b"{ \"schema\": \"confanon-state-v1\", torn").expect("write torn");

    let config = root.join("confanon.toml");
    write_config(
        &config,
        &[("alpha", &state_dir)],
        "recovery_probe_ms = 100\n",
        "",
    );
    let daemon = Daemon::spawn(&config, &root.join("port"));
    let mut c = daemon.connect();

    let good = b"hostname r1\nrouter bgp 65001\n neighbor 10.3.2.1 remote-as 1239\n";
    let refused = c.anon("alpha", "r1.cfg", good).expect("refused request");
    assert_eq!(refused.status, "TENANT-QUARANTINED");
    assert!(
        refused.text().contains("state-quarantined"),
        "payload: {}",
        refused.text()
    );
    // The torn evidence is untouched while quarantined.
    assert_eq!(
        std::fs::read(&torn_path).expect("read torn"),
        b"{ \"schema\": \"confanon-state-v1\", torn".to_vec()
    );

    // Operator clears the torn document; the probe re-runs the load
    // path, adopts the clean (empty) store, and the tenant serves.
    std::fs::remove_file(&torn_path).expect("clear torn state");
    let doc = await_health(&mut c, "alpha", "serving");
    assert!(fault_counter(&doc, "recoveries") >= 1);
    let served = c.anon("alpha", "r1.cfg", good).expect("served request");
    assert_eq!(served.status, "OK", "payload: {}", served.text());

    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}
