//! The zero-copy equivalence suite: differential properties pinning the
//! borrow-or-own rewrite, the byte-class tokenizer dispatch, and the
//! mmap read path to their straightforward baselines.
//!
//! Each optimized path in this PR keeps its predecessor in-tree — the
//! clone-always emit (`disable_zero_copy`), the per-char scanners
//! (`tokenize_chars`/`segment_chars`), the buffered `Fs::read` — and
//! this suite proves the pairs indistinguishable on seeded and
//! chaos-mutated inputs:
//!
//! 1. **Borrow verdict** — `anonymize_command_line` returns
//!    `Cow::Borrowed` *exactly* when no byte of the line changed;
//! 2. **Rewrite identity** — whole-config output bytes and per-rule
//!    fire counts are equal with zero-copy on and off;
//! 3. **Scanner identity** — the byte-table tokenizer and segmenter
//!    agree with the per-char references on arbitrary mutated lines;
//! 4. **Read-path identity** — `read_mapped` returns the same bytes as
//!    `read` for every size class, on `StdFs` (real mmap above the
//!    threshold) and on `FaultFs` (default-method fallback).

use std::borrow::Cow;
use std::path::PathBuf;

use confanon::core::{
    sanitize_bytes, Anonymizer, AnonymizerConfig, Fs, StdFs, MMAP_MIN_LEN,
};
use confanon::iosparse::{segment, segment_chars, tokenize, tokenize_chars};
use confanon_testkit::chaos::ChaosMutator;
use confanon_testkit::props::{any, pattern, Strategy};

/// Strategy: one plausible config line, biased toward the shapes the
/// rules care about (addresses, ASNs, hostnames, pass-list keywords).
fn config_line() -> impl Strategy<Value = String> {
    (
        any::<u32>(),
        1u16..64000,
        pattern("[a-zA-Z][a-zA-Z0-9.-]{0,12}"),
        0u8..6,
    )
        .prop_map(|(raw, asn, word, shape)| {
            let ip = confanon::netprim::Ip(raw);
            match shape {
                0 => format!(" neighbor {ip} remote-as {asn}"),
                1 => format!("hostname {word}"),
                2 => format!(" ip address {ip} 255.255.255.0"),
                3 => format!(" description link to {word} via {ip}"),
                4 => "interface Serial0/0".to_string(),
                _ => format!(" snmp-server community {word} RO"),
            }
        })
}

/// Strategy: a small multi-line config built from [`config_line`]s.
fn config_text() -> impl Strategy<Value = String> {
    (config_line(), config_line(), config_line(), config_line())
        .prop_map(|(a, b, c, d)| format!("{a}\n{b}\n{c}\n{d}\n"))
}

/// A chaos-mutated descendant of a seed corpus file: hostile bytes run
/// through the same sanitizer the pipeline uses.
fn chaos_text(seed: u64) -> String {
    let ds = confanon::confgen::generate_dataset(&confanon::confgen::DatasetSpec {
        seed: 0x2e20_c0de,
        networks: 1,
        mean_routers: 2,
        backbone_fraction: 0.5,
    });
    let base = &ds.networks[0].routers[seed as usize % ds.networks[0].routers.len()].config;
    let mutated = ChaosMutator::new(seed).mutate(base.as_bytes());
    let (repaired, _) = sanitize_bytes(&mutated.bytes);
    repaired
}

fn anon(secret: u64, zero_copy: bool) -> Anonymizer {
    let mut cfg = AnonymizerConfig::new(secret.to_be_bytes().to_vec());
    cfg.disable_zero_copy = !zero_copy;
    Anonymizer::new(cfg)
}

confanon_testkit::props! {
    cases = 256;

    /// The borrow-or-own invariant (DESIGN.md §17): `Borrowed` is
    /// returned exactly when the emitted line is byte-identical to the
    /// input — classification-only rule fires and permutation fixed
    /// points included.
    fn borrowed_iff_no_byte_changed(line in config_line(), secret in any::<u64>()) {
        let mut a = anon(secret, true);
        let mut stats = Default::default();
        let out = a.anonymize_command_line(&line, &mut stats);
        match &out {
            Cow::Borrowed(s) => assert_eq!(*s, line, "Borrowed must alias the input"),
            Cow::Owned(s) => assert_ne!(
                s, &line,
                "an Owned line equal to its input is a missed borrow"
            ),
        }
        let r = a.rewrite_stats();
        assert_eq!(r.lines_total, r.lines_borrowed + r.lines_rewritten);
        assert_eq!(
            matches!(out, Cow::Borrowed(_)),
            r.lines_borrowed == 1,
            "the counters must agree with the verdict"
        );
    }

    /// Zero-copy on vs. off: byte-identical whole-config output and
    /// identical per-rule fire counts, on generated configs.
    fn zero_copy_matches_legacy_on_generated(text in config_text(), secret in any::<u64>()) {
        let new = anon(secret, true).anonymize_config(&text);
        let old = anon(secret, false).anonymize_config(&text);
        assert_eq!(new.text, old.text, "output bytes diverged");
        assert_eq!(
            new.stats.rule_fires_complete(),
            old.stats.rule_fires_complete(),
            "per-rule fire counts diverged"
        );
    }

    /// The same differential on chaos-mutated corpora: hostile token
    /// shapes, torn lines, and banner debris must not open a gap
    /// between the two emit paths either.
    fn zero_copy_matches_legacy_on_chaos(seed in any::<u64>(), secret in any::<u64>()) {
        let text = chaos_text(seed);
        let new = anon(secret, true).anonymize_config(&text);
        let old = anon(secret, false).anonymize_config(&text);
        assert_eq!(new.text, old.text, "chaos seed {seed}: output bytes diverged");
        assert_eq!(
            new.stats.rule_fires_complete(),
            old.stats.rule_fires_complete(),
            "chaos seed {seed}: per-rule fire counts diverged"
        );
    }

    /// The byte-class tokenizer and segmenter agree with the per-char
    /// references on every line of a chaos-mutated config.
    fn byte_dispatch_scanners_match_references(seed in any::<u64>()) {
        for line in chaos_text(seed).lines() {
            assert_eq!(tokenize(line), tokenize_chars(line), "line {line:?}");
            for tok in tokenize(line) {
                assert_eq!(
                    segment(tok.text),
                    segment_chars(tok.text),
                    "word {:?}",
                    tok.text
                );
            }
        }
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("confanon-zerocopy-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mk tmpdir");
    d
}

/// `read_mapped` vs. `read` identity at every size class, on both the
/// real filesystem (which maps files at or above [`MMAP_MIN_LEN`]) and
/// the fault injector (which inherits the trait's buffered default —
/// identity by construction, pinned here so an override would have to
/// re-prove it).
#[test]
fn read_mapped_is_read_on_std_and_fault_fs() {
    let dir = tmpdir("readpath");
    let fault = confanon_testkit::faultfs::FaultFs::quiet(2004);
    let sizes = [
        0usize,
        1,
        4096,
        MMAP_MIN_LEN as usize - 1,
        MMAP_MIN_LEN as usize,
        2 * MMAP_MIN_LEN as usize + 17,
    ];
    for (i, size) in sizes.into_iter().enumerate() {
        let bytes: Vec<u8> = (0..size).map(|b| (b * 31 % 251) as u8).collect();
        let path = dir.join(format!("f{i}.cfg"));
        std::fs::write(&path, &bytes).expect("write fixture");

        let buffered = Fs::read(&StdFs, &path).expect("std read");
        let mapped = Fs::read_mapped(&StdFs, &path).expect("std read_mapped");
        assert_eq!(&*mapped, buffered.as_slice(), "StdFs size {size}");

        let fb = Fs::read(&fault, &path).expect("faultfs read");
        let fm = Fs::read_mapped(&fault, &path).expect("faultfs read_mapped");
        assert_eq!(&*fm, fb.as_slice(), "FaultFs size {size}");
        assert!(
            !fm.is_mapped(),
            "FaultFs must inherit the buffered default, size {size}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An anonymization run fed through `read_mapped` produces the same
/// released bytes as one fed through buffered `read` — the corpus-level
/// closure of the per-file identity above.
#[test]
fn pipeline_output_identical_across_read_paths() {
    let ds = confanon::confgen::generate_dataset(&confanon::confgen::DatasetSpec {
        seed: 0x7e5d,
        networks: 1,
        mean_routers: 3,
        backbone_fraction: 0.5,
    });
    let dir = tmpdir("pipeline");
    let mut names: Vec<PathBuf> = Vec::new();
    for r in &ds.networks[0].routers {
        // Tile each config past MMAP_MIN_LEN so the mapped arm actually
        // exercises mmap on at least some files.
        let mut text = String::new();
        while text.len() <= MMAP_MIN_LEN as usize {
            text.push_str(&r.config);
        }
        let p = dir.join(format!("{}.cfg", r.hostname));
        std::fs::write(&p, text.as_bytes()).expect("write corpus file");
        names.push(p);
    }

    let corpus_via = |mapped: bool| -> Vec<(String, String)> {
        names
            .iter()
            .map(|p| {
                let bytes: Vec<u8> = if mapped {
                    Fs::read_mapped(&StdFs, p).expect("read_mapped").to_vec()
                } else {
                    Fs::read(&StdFs, p).expect("read")
                };
                let (text, _) = sanitize_bytes(&bytes);
                (p.file_name().unwrap().to_string_lossy().into_owned(), text)
            })
            .collect()
    };

    let run = |files: &[(String, String)]| -> Vec<(String, String)> {
        let cfg = AnonymizerConfig::new(b"readpath-secret".to_vec());
        let run = confanon::workflow::anonymize_corpus_gated(files, cfg, 2);
        run.clean
            .into_iter()
            .map(|o| (o.name, o.text))
            .collect()
    };

    assert_eq!(
        run(&corpus_via(true)),
        run(&corpus_via(false)),
        "released bytes must not depend on the read path"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
