//! Whole-pipeline integration: generate networks, anonymize them, run
//! both validation suites, and scan for leaks against ground truth.
//!
//! This is the paper's §5 methodology executed end to end on the
//! synthetic dataset: a colleague with the originals runs the same tests
//! over both sides and checks for differences.

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::workflow::{
    anonymize_network, audit_network, ground_truth_record, run_suite1, run_suite2,
};

fn test_spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        seed,
        networks: 6,
        mean_routers: 6,
        backbone_fraction: 0.5,
    }
}

#[test]
fn suites_pass_and_no_leaks_across_networks() {
    let ds = generate_dataset(&test_spec(1));
    for (i, net) in ds.networks.iter().enumerate() {
        let secret = format!("owner-secret-{i}");
        let run = anonymize_network(net, secret.as_bytes());

        let s1 = run_suite1(net, &run);
        assert!(
            s1.passed(),
            "{}: suite1 differs in {:?}\npre={:?}\npost={:?}",
            net.name,
            s1.differing_fields,
            s1.pre,
            s1.post
        );

        let s2 = run_suite2(net, &run);
        assert!(
            s2.passed(),
            "{}: suite2 differs at routers {:?} (adjacency: {}, sessions: {})",
            net.name,
            s2.differing_routers,
            s2.adjacency_differs,
            s2.sessions_differ
        );

        let report = audit_network(net, &run);
        assert!(
            report.is_clean(),
            "{}: residual leaks: {:#?}",
            net.name,
            &report.leaks[..report.leaks.len().min(5)]
        );
    }
}

#[test]
fn anonymization_is_deterministic_per_secret() {
    let ds = generate_dataset(&test_spec(2));
    let net = &ds.networks[0];
    let a = anonymize_network(net, b"same-secret");
    let b = anonymize_network(net, b"same-secret");
    assert_eq!(a.anonymized, b.anonymized);
    let c = anonymize_network(net, b"other-secret");
    assert_ne!(a.anonymized, c.anonymized);
}

#[test]
fn ground_truth_never_survives_in_text() {
    // Belt and braces beyond the scanner: no owner word, carrier word, or
    // secret appears verbatim anywhere in the output.
    let ds = generate_dataset(&test_spec(3));
    let net = &ds.networks[0];
    let run = anonymize_network(net, b"s3");
    let text = run.anonymized.join("\n").to_ascii_lowercase();
    for w in net.ground_truth.owner_words.iter().chain(
        net.ground_truth
            .carrier_words
            .iter()
            .chain(&net.ground_truth.secrets),
    ) {
        assert!(
            !text.contains(&w.to_ascii_lowercase()),
            "{}: word {w:?} survived",
            net.name
        );
    }
}

#[test]
fn ablating_a_locator_is_caught_by_the_audit() {
    use confanon::core::leak::LeakScanner;
    use confanon::core::{Anonymizer, AnonymizerConfig, RuleId};

    let ds = generate_dataset(&test_spec(4));
    // Pick a network with eBGP peers.
    let net = ds
        .networks
        .iter()
        .find(|n| !n.ground_truth.peer_asns.is_empty())
        .expect("some network peers");
    let cfg = AnonymizerConfig::new(b"s4".to_vec())
        .without_rule(RuleId::R07NeighborRemoteAs)
        .without_rule(RuleId::R09AsPathAccessListRegex);
    let mut anon = Anonymizer::new(cfg);
    let text: String = net
        .routers
        .iter()
        .map(|r| anon.anonymize_config(&r.config).text)
        .collect();
    let record = ground_truth_record(net);
    let report = LeakScanner::scan_excluding(&record, anon.emitted_exclusions(), &text);
    assert!(
        !report.is_clean(),
        "{}: ablated locators should leak peers {:?}",
        net.name,
        net.ground_truth.peer_asns
    );
}

#[test]
fn cross_file_consistency_of_shared_identifiers() {
    // The same link subnet appears in two routers' configs; both sides
    // must map to the same anonymized subnet (suite 2 already checks this
    // via adjacency, but assert it directly too).
    let ds = generate_dataset(&test_spec(5));
    let net = &ds.networks[0];
    let run = anonymize_network(net, b"s5");
    let pre_design = confanon::design::extract_design(
        &net.routers
            .iter()
            .map(|r| confanon::iosparse::Config::parse(&r.config))
            .collect::<Vec<_>>(),
    );
    let post_design = confanon::workflow::post_design(&run);
    assert_eq!(pre_design.adjacencies, post_design.adjacencies);
    assert_eq!(
        pre_design.internal_bgp_sessions,
        post_design.internal_bgp_sessions
    );
}

#[test]
fn dual_stack_networks_validate_and_scan_clean() {
    // Find a dual-stacked network (IPv6 extension) and check the v6
    // structure is preserved and no v6 original survives.
    let ds = generate_dataset(&DatasetSpec {
        seed: 66,
        networks: 12,
        mean_routers: 8,
        backbone_fraction: 0.5,
    });
    let net = ds
        .networks
        .iter()
        .find(|n| !n.ground_truth.v6_addresses.is_empty())
        .expect("some network is dual-stacked");
    let run = anonymize_network(net, b"v6-e2e");
    let s1 = run_suite1(net, &run);
    assert!(s1.passed(), "{:?}", s1.differing_fields);
    assert!(s1.pre.ipv6_interfaces > 0, "v6 interfaces present");
    assert_eq!(s1.pre.ipv6_subnet_histogram, s1.post.ipv6_subnet_histogram);
    let audit = audit_network(net, &run);
    assert!(audit.is_clean(), "{:#?}", &audit.leaks[..audit.leaks.len().min(3)]);
    // And the originals are really gone.
    let text = run.anonymized.join("\n");
    for a in net.ground_truth.v6_addresses.iter().take(10) {
        assert!(!text.contains(a.as_str()), "{a} survived");
    }
}

#[test]
fn parallel_anonymization_matches_serial() {
    use confanon::workflow::anonymize_dataset_parallel;
    let ds = generate_dataset(&test_spec(7));
    let parallel = anonymize_dataset_parallel(&ds.networks, |i| format!("p-{i}").into_bytes());
    for (i, net) in ds.networks.iter().enumerate() {
        let serial = anonymize_network(net, format!("p-{i}").as_bytes());
        assert_eq!(
            serial.anonymized, parallel[i].anonymized,
            "{} diverged between serial and parallel",
            net.name
        );
    }
}
