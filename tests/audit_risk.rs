//! Property suite for the risk–utility audit harness.
//!
//! Four contracts from the audit's design:
//!
//! 1. **Determinism.** For a fixed corpus, secret, and seed the full
//!    `confanon-risk-v1` report is byte-identical across repeats and
//!    across `--jobs` values — attack rates are replayable numbers, not
//!    samples.
//! 2. **Monotonicity.** Ablating an anonymization rule can only help
//!    the adversary: no attack rate in a `disable:*` tradeoff row drops
//!    below its baseline.
//! 3. **Decoys dilute.** NetCloak-style chaff strictly reduces
//!    prefix-structure fingerprinting success whenever the baseline
//!    attack succeeds at all.
//! 4. **Negative control.** Auditing a corpus released under a
//!    *different* secret scores the known-plaintext ASN attack at (or
//!    below) chance level — the red team's numbers measure the key,
//!    not an artifact of the harness.

use std::collections::BTreeSet;

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::core::AnonymizerConfig;
use confanon::redteam::{rate, run_suite, validate_risk_report, AuditOptions};
use confanon::workflow::{
    anonymize_corpus_gated, risk_audit, RiskAudit, RiskAuditInput, DEFAULT_SWEEP_RULES,
};

/// A small two-network corpus: enough structure for every attack to
/// have real trials, small enough that the audit's sweep
/// re-anonymizations stay fast.
fn corpus() -> Vec<(String, String)> {
    let ds = generate_dataset(&DatasetSpec {
        seed: 0xA0D1_7EA2,
        networks: 2,
        mean_routers: 3,
        backbone_fraction: 0.5,
    });
    ds.networks
        .iter()
        .flat_map(|n| {
            n.routers
                .iter()
                .map(move |r| (format!("{}/{}.cfg", n.name, r.hostname), r.config.clone()))
        })
        .collect()
}

/// Anonymizes `files` under `secret` and returns the released bytes,
/// requiring a clean (nothing quarantined, nothing panicked) run: the
/// audit properties are about released corpora.
fn release(files: &[(String, String)], secret: &[u8]) -> Vec<(String, String)> {
    let run = anonymize_corpus_gated(files, AnonymizerConfig::new(secret.to_vec()), 2);
    assert!(
        run.quarantined.is_empty() && run.failures.is_empty(),
        "fixture corpus must release cleanly"
    );
    run.clean
        .iter()
        .map(|o| (o.name.clone(), o.text.clone()))
        .collect()
}

fn sweep_rules() -> Vec<String> {
    DEFAULT_SWEEP_RULES.iter().map(|s| s.to_string()).collect()
}

fn audit(pre: &[(String, String)], post: &[(String, String)], secret: &[u8], jobs: usize) -> RiskAudit {
    let rules = sweep_rules();
    risk_audit(&RiskAuditInput {
        pre,
        post,
        decoys: &BTreeSet::new(),
        secret,
        jobs,
        opts: AuditOptions::default(),
        sweep_rules: &rules,
        decoy_sweep: 2,
    })
}

/// Property 1: the report is a pure function of (corpus, secret, seed)
/// — byte-identical across an independent rerun and across worker
/// counts — and always passes its own validator.
#[test]
fn risk_report_is_byte_identical_across_runs_and_jobs() {
    let pre = corpus();
    let secret = b"audit-prop-secret";
    let post = release(&pre, secret);

    let a = audit(&pre, &post, secret, 1);
    validate_risk_report(&a.report).expect("report must validate");

    let b = audit(&pre, &post, secret, 8);
    assert_eq!(
        a.report.to_string_pretty(),
        b.report.to_string_pretty(),
        "report must be byte-identical across --jobs"
    );

    // Fresh everything: regenerate the corpus and re-release.
    let pre2 = corpus();
    let post2 = release(&pre2, secret);
    let c = audit(&pre2, &post2, secret, 3);
    assert_eq!(
        a.report.to_string_pretty(),
        c.report.to_string_pretty(),
        "report must be byte-identical across independent reruns"
    );
}

/// Property 2: every `disable:*` row prices a strictly weaker
/// anonymizer, so no attack gets *harder* — each rate stays at or
/// above its baseline.
#[test]
fn disabling_rules_never_decreases_risk() {
    let pre = corpus();
    let secret = b"audit-mono-secret";
    let post = release(&pre, secret);
    let a = audit(&pre, &post, secret, 2);

    let base = &a.baseline;
    let mut ablation_rows = 0;
    for row in &a.rows {
        if !row.label.starts_with("disable:") {
            continue;
        }
        ablation_rows += 1;
        let s = &row.suite;
        assert!(
            rate(s.prefix.successes, s.prefix.trials)
                >= rate(base.prefix.successes, base.prefix.trials),
            "{}: prefix risk regressed below baseline",
            row.label
        );
        assert!(
            rate(s.degree.successes, s.degree.trials)
                >= rate(base.degree.successes, base.degree.trials),
            "{}: degree risk regressed below baseline",
            row.label
        );
        assert!(
            rate(s.asn.successes, s.asn.trials) >= rate(base.asn.successes, base.asn.trials),
            "{}: asn risk regressed below baseline",
            row.label
        );
    }
    assert_eq!(
        ablation_rows,
        DEFAULT_SWEEP_RULES.len(),
        "every default sweep rule must produce a tradeoff row"
    );
    // And the ablations are not a no-op: disabling the ASN rules must
    // let the known-plaintext attack recover something.
    assert!(
        a.rows
            .iter()
            .filter(|r| r.label.starts_with("disable:"))
            .any(|r| r.suite.asn.successes > base.asn.successes),
        "ablating the ASN rules must strictly increase ASN recovery"
    );
}

/// Property 3: the decoy row strictly reduces prefix-fingerprint
/// success relative to a baseline where the attack works.
#[test]
fn decoys_strictly_reduce_prefix_fingerprint_success() {
    let pre = corpus();
    let secret = b"audit-decoy-secret";
    let post = release(&pre, secret);
    let a = audit(&pre, &post, secret, 2);

    assert!(
        a.baseline.prefix.successes > 0,
        "baseline prefix fingerprinting must succeed on a structure-preserving \
         release (that is the residual risk the decoys exist to dilute)"
    );
    let decoy_row = a
        .rows
        .iter()
        .find(|r| r.label == "decoys:2")
        .expect("decoy sweep row");
    assert!(
        decoy_row.suite.prefix.successes < a.baseline.prefix.successes,
        "decoy chaff must strictly reduce exact prefix-fingerprint recovery \
         ({} -> {})",
        a.baseline.prefix.successes,
        decoy_row.suite.prefix.successes
    );
    assert!(decoy_row.suite.decoy_files > 0, "decoy row must count its chaff");
}

/// Property 4 (negative control): against a release produced under a
/// different secret, the known-plaintext ASN attack scores at or below
/// chance — and nothing survives in plaintext either way.
#[test]
fn wrong_secret_scores_at_chance_level() {
    let pre = corpus();
    let post_foreign = release(&pre, b"the-real-owner-secret");
    let suite = run_suite(
        &pre,
        &post_foreign,
        &BTreeSet::new(),
        b"the-auditors-wrong-guess",
        &AuditOptions::default(),
    );
    assert!(suite.asn.trials > 0, "the control needs real trials");
    assert!(
        rate(suite.asn.successes, suite.asn.trials) <= suite.asn.chance_level,
        "wrong-key ASN recovery must collapse to chance: {}/{} vs chance {}",
        suite.asn.successes,
        suite.asn.trials,
        suite.asn.chance_level
    );
    assert_eq!(
        suite.asn.plaintext_survivors, 0,
        "anonymized output must not carry plaintext public ASNs"
    );
}
