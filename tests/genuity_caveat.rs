//! The paper's Genuity footnote, reproduced.
//!
//! §6.1: recording ASNs and grepping the output for survivors "has worked
//! well on the configs we have tried it on, although it would work poorly
//! for Genuity customers as Genuity's AS number (AS 1) will appear in
//! many unrelated config lines."
//!
//! We keep AS 1 out of the default peer pool for exactly this reason
//! (`confanon_confgen::names::GENUITY_ASN`); this test plants it and
//! watches the scanner drown in false positives — then shows the
//! image-exclusion mechanism recovering most of the precision.

use confanon::confgen::names::GENUITY_ASN;
use confanon::core::leak::{LeakRecord, LeakScanner};
use confanon::core::{Anonymizer, AnonymizerConfig, RuleId};

/// A config peering with Genuity, full of unrelated `1`s.
fn genuity_customer_config() -> String {
    format!(
        "router bgp 65001\n\
         \u{20}neighbor 4.4.4.2 remote-as {GENUITY_ASN}\n\
         interface Serial0/1\n\
         \u{20}ip address 4.4.4.1 255.255.255.252\n\
         router ospf 1\n\
         \u{20}network 4.4.4.0 0.0.0.3 area 1\n\
         line vty 0 1\n\
         \u{20}session-limit 1\n"
    )
}

#[test]
fn raw_scan_drowns_in_false_positives() {
    // The paper's raw methodology: record AS 1, grep the output.
    let record = LeakRecord {
        asns: [GENUITY_ASN.to_string()].into_iter().collect(),
        ..Default::default()
    };
    let mut anon = Anonymizer::new(AnonymizerConfig::new(b"genuity".to_vec()));
    let out = anon.anonymize_config(&genuity_customer_config());
    let report = LeakScanner::new(&record).scan(&out.text);
    // AS 1 itself was mapped away (R07), yet the scan still flags several
    // unrelated lines: OSPF process ids, vty ranges, session limits, area
    // numbers — exactly the failure mode the footnote describes.
    assert!(
        report.leaks.len() >= 3,
        "expected many false positives, got {:#?}",
        report.leaks
    );
}

#[test]
fn the_actual_asn_is_still_anonymized() {
    let mut anon = Anonymizer::new(AnonymizerConfig::new(b"genuity".to_vec()));
    let out = anon.anonymize_config(&genuity_customer_config());
    let mapped = anon.asn_map().map(GENUITY_ASN);
    assert!(
        out.text.contains(&format!("remote-as {mapped}")),
        "{}",
        out.text
    );
    assert!(!out.text.contains("remote-as 1\n"), "{}", out.text);
}

#[test]
fn ablated_genuity_leak_is_distinguishable_in_principle() {
    // With the locator ablated, AS 1 genuinely leaks — and the scanner
    // does flag it, indistinguishably from the noise. The paper's answer
    // is human review; ours additionally excludes emitted images, which
    // here removes nothing (nothing emitted equals "1") and so keeps the
    // true leak flagged.
    let record = LeakRecord {
        asns: [GENUITY_ASN.to_string()].into_iter().collect(),
        ..Default::default()
    };
    let cfg = AnonymizerConfig::new(b"genuity".to_vec()).without_rule(RuleId::R07NeighborRemoteAs);
    let mut anon = Anonymizer::new(cfg);
    let out = anon.anonymize_config(&genuity_customer_config());
    let report =
        LeakScanner::scan_excluding(&record, anon.emitted_exclusions(), &out.text);
    assert!(
        report
            .leaks
            .iter()
            .any(|l| l.line.contains("remote-as 1")),
        "the real leak must be among the flags: {:#?}",
        report.leaks
    );
}
