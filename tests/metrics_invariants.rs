//! The metrics-invariant suite: the observability layer's determinism
//! contract.
//!
//! `metrics.json` splits into a `deterministic` section — a pure
//! function of (corpus, config, secret), byte-identical across any
//! `--jobs` value and across resumed vs. one-shot runs — and a `timing`
//! section that carries the wall-clock data excluded from that
//! guarantee. This suite pins the contract three ways:
//!
//! 1. **Jobs invariance** — the deterministic section is byte-identical
//!    at `--jobs 1/2/4` (through the binary) and across worker counts
//!    in-process over chaos-mutated corpora (property test);
//! 2. **Resume invariance** — for *every* crash point enumerated with
//!    `CONFANON_CRASH_AFTER`, the resumed run's deterministic section
//!    equals the golden uninterrupted run's;
//! 3. **Conservation** — per-rule hit counts in the metrics document
//!    sum to the `BatchReport` totals, and the category rollup
//!    conserves the same total.
//!
//! Plus the overhead guard: always-on instrumentation must cost < 5%
//! versus a stripped ([`Clock::disabled`]) run on the smoke corpus.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use confanon::core::{sanitize_bytes, AnonymizerConfig};
use confanon::obs::{validate_metrics, Clock};
use confanon::workflow::{anonymize_corpus_gated, anonymize_corpus_gated_clocked};
use confanon_testkit::chaos::ChaosMutator;
use confanon_testkit::json::Json;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_confanon"))
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("confanon-metrics-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mktemp");
    d
}

/// A small generated corpus (one network, a few routers).
fn generate_corpus(root: &Path) -> PathBuf {
    let corpus = root.join("corpus");
    let status = bin()
        .args(["generate", "--networks", "1", "--routers", "3", "--seed", "1907"])
        .arg("--out-dir")
        .arg(&corpus)
        .status()
        .expect("run generate");
    assert!(status.success());
    corpus
}

/// Runs `batch` over `corpus` with a metrics file; returns (exit code,
/// stderr). The metrics file lives *outside* `--out-dir` (the journal
/// invariant allows nothing but the manifest and `.anon` files there).
fn run_batch_with_metrics(
    corpus: &Path,
    out_dir: &Path,
    metrics: &Path,
    jobs: u32,
    crash_after: Option<u64>,
    resume: bool,
) -> (Option<i32>, String) {
    let mut cmd = bin();
    cmd.args(["batch", "--secret", "metrics-suite-secret", "--jobs", &jobs.to_string()]);
    if resume {
        cmd.arg("--resume");
    }
    cmd.arg("--metrics").arg(metrics);
    cmd.arg("--out-dir").arg(out_dir).arg(corpus);
    match crash_after {
        Some(k) => cmd.env("CONFANON_CRASH_AFTER", k.to_string()),
        None => cmd.env_remove("CONFANON_CRASH_AFTER"),
    };
    let out = cmd.output().expect("run batch");
    (out.status.code(), String::from_utf8_lossy(&out.stderr).to_string())
}

/// Parses a metrics file, validates its schema, and returns the
/// deterministic section serialized pretty (the comparison key).
fn deterministic_section(path: &Path) -> String {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    validate_metrics(&doc).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    doc.get("deterministic")
        .expect("deterministic section")
        .to_string_pretty()
}

#[test]
fn deterministic_section_is_identical_across_job_counts() {
    let root = tmpdir("jobs");
    let corpus = generate_corpus(&root);

    let mut sections = Vec::new();
    for jobs in [1u32, 2, 4] {
        let metrics = root.join(format!("metrics-j{jobs}.json"));
        let (code, stderr) = run_batch_with_metrics(
            &corpus,
            &root.join(format!("out-j{jobs}")),
            &metrics,
            jobs,
            None,
            false,
        );
        assert_eq!(code, Some(0), "jobs={jobs}: {stderr}");
        sections.push((jobs, deterministic_section(&metrics)));
    }
    for (jobs, section) in &sections[1..] {
        assert_eq!(
            section, &sections[0].1,
            "deterministic section at --jobs {jobs} differs from --jobs 1"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Parses the completed-durable-write count from the batch stderr
/// summary ("durability: N atomic write(s), ...").
fn atomic_writes_from_stderr(stderr: &str) -> u64 {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("durability: "))
        .expect("durability summary line");
    line.trim_start_matches("durability: ")
        .split_whitespace()
        .next()
        .expect("count token")
        .parse()
        .expect("numeric count")
}

#[test]
fn deterministic_section_survives_resume_from_every_crash_point() {
    let root = tmpdir("resume");
    let corpus = generate_corpus(&root);

    // Golden uninterrupted run: its deterministic section is the truth
    // every resumed run must reproduce, and its durable-write count
    // enumerates the crash points.
    let golden_metrics = root.join("metrics-golden.json");
    let (code, stderr) = run_batch_with_metrics(
        &corpus,
        &root.join("golden"),
        &golden_metrics,
        1,
        None,
        false,
    );
    assert_eq!(code, Some(0), "golden run: {stderr}");
    let writes = atomic_writes_from_stderr(&stderr);
    assert!(writes >= 3, "corpus too small to exercise crash points");
    let golden = deterministic_section(&golden_metrics);

    for k in 1..=writes {
        // Alternate the worker count across the crash so the invariance
        // is exercised jointly with jobs-agnostic resume.
        let (crash_jobs, resume_jobs) = if k % 2 == 0 { (4, 1) } else { (1, 4) };
        let out_dir = root.join(format!("out-k{k}"));
        let crash_metrics = root.join(format!("metrics-crash-k{k}.json"));
        let resumed_metrics = root.join(format!("metrics-resumed-k{k}.json"));

        let (code, _) =
            run_batch_with_metrics(&corpus, &out_dir, &crash_metrics, crash_jobs, Some(k), false);
        assert_ne!(code, Some(0), "k={k}: crash run must not exit cleanly");

        let (code, stderr) =
            run_batch_with_metrics(&corpus, &out_dir, &resumed_metrics, resume_jobs, None, true);
        assert_eq!(code, Some(0), "k={k}: resume failed: {stderr}");
        assert_eq!(
            deterministic_section(&resumed_metrics),
            golden,
            "k={k}: resumed deterministic section differs from the golden run"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// An in-process corpus (one network, a handful of routers).
fn base_corpus() -> Vec<(String, String)> {
    let ds = confanon::confgen::generate_dataset(&confanon::confgen::DatasetSpec {
        seed: 0x0B5E_2BAB,
        networks: 1,
        mean_routers: 5,
        backbone_fraction: 0.5,
    });
    ds.networks[0]
        .routers
        .iter()
        .map(|r| (format!("{}.cfg", r.hostname), r.config.clone()))
        .collect()
}

#[test]
fn per_rule_hits_in_metrics_sum_to_batch_report_totals() {
    let files = base_corpus();
    let run = anonymize_corpus_gated(&files, AnonymizerConfig::new(b"sum-secret".to_vec()), 2);

    // The full-corpus run gates nothing, so BatchReport totals and the
    // warmed anonymizer agree — the metrics rules section is built from
    // the latter and must conserve the former.
    let report_total: u64 = run.totals.rule_fires.values().sum();
    assert!(report_total > 0, "corpus must fire rules");

    let doc = run.metrics_deterministic_json();
    let rules = doc.get("rules").expect("rules section");
    let by_rule = rules.get("by_rule").expect("by_rule");
    let fired_total = rules.get("fired_total").and_then(Json::as_u64).expect("fired_total");

    let by_rule_sum: u64 = confanon::core::ALL_RULES
        .iter()
        .map(|r| by_rule.get(r.name).and_then(Json::as_u64).expect("every rule present"))
        .sum();
    assert_eq!(by_rule_sum, fired_total, "per-rule fires must sum to the total");
    assert_eq!(fired_total, report_total, "metrics total must equal BatchReport's");

    let by_category = rules.get("by_category").expect("by_category");
    let by_category_sum: u64 = ["segmentation", "comments", "asn-location", "misc", "identifiers"]
        .iter()
        .map(|c| by_category.get(c).and_then(Json::as_u64).expect("every category present"))
        .sum();
    assert_eq!(by_category_sum, fired_total, "category rollup must conserve the total");

    // Zero-filled: all 28 rules appear whether or not they fired.
    let keys = match by_rule {
        Json::Obj(pairs) => pairs.len(),
        _ => panic!("by_rule must be an object"),
    };
    assert_eq!(keys, 28);
}

/// Mutates the base corpus under `seed` the way the CLI's repair pass
/// does.
fn chaos_corpus(seed: u64) -> Vec<(String, String)> {
    let mut mutator = ChaosMutator::new(seed);
    base_corpus()
        .into_iter()
        .map(|(name, text)| {
            let mutated = mutator.mutate(text.as_bytes());
            let (repaired, _) = sanitize_bytes(&mutated.bytes);
            (name, repaired)
        })
        .collect()
}

confanon_testkit::props! {
    cases = 6;

    /// In-process jobs invariance over hostile corpora: worker count
    /// cannot change a byte of the deterministic section, even when the
    /// gate quarantines part of the corpus.
    fn deterministic_section_is_jobs_invariant_under_chaos(seed in 0u64..1_000_000) {
        let files = chaos_corpus(seed);
        let cfg = || AnonymizerConfig::new(b"chaos-metrics-secret".to_vec());
        let a = anonymize_corpus_gated(&files, cfg(), 1);
        let b = anonymize_corpus_gated(&files, cfg(), 8);
        assert_eq!(
            a.metrics_deterministic_json().to_string_pretty(),
            b.metrics_deterministic_json().to_string_pretty(),
            "deterministic section must not depend on the worker count"
        );
    }
}

#[test]
fn observability_overhead_is_under_five_percent() {
    // The instrumentation must be cheap enough to leave on: compare the
    // gated pipeline with a live clock against a disabled one
    // (every recording a no-op). Min-of-5 timing damps scheduler noise;
    // a few retries keep a loaded CI box from flaking the suite. A
    // smaller corpus than base_corpus() keeps the repeated runs fast
    // without shrinking per-file work below realistic size.
    let ds = confanon::confgen::generate_dataset(&confanon::confgen::DatasetSpec {
        seed: 0x0B5E_2BAB,
        networks: 1,
        mean_routers: 3,
        backbone_fraction: 0.5,
    });
    let files: Vec<(String, String)> = ds.networks[0]
        .routers
        .iter()
        .map(|r| (format!("{}.cfg", r.hostname), r.config.clone()))
        .collect();
    let cfg = || AnonymizerConfig::new(b"overhead-secret".to_vec());
    let time_with = |clock: Clock| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            let run = anonymize_corpus_gated_clocked(&files, cfg(), 2, &BTreeSet::new(), clock);
            std::hint::black_box(run.clean.len());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };

    let mut last_ratio = f64::INFINITY;
    for _attempt in 0..4 {
        let instrumented = time_with(Clock::new());
        let stripped = time_with(Clock::disabled());
        last_ratio = instrumented / stripped.max(1e-9);
        if last_ratio < 1.05 {
            return;
        }
    }
    panic!("observability overhead {last_ratio:.4}x exceeds the 5% budget");
}

#[test]
fn timing_section_carries_spans_and_is_separate() {
    // The timing section must exist and hold the span aggregates — and
    // none of its keys may leak into the deterministic section (a span
    // count there would silently break byte-identity).
    let files = base_corpus();
    let run = anonymize_corpus_gated(&files, AnonymizerConfig::new(b"span-secret".to_vec()), 2);

    let timing = run.metrics_timing_json();
    let spans = timing.get("spans").expect("span summary");
    for cat in ["phase", "discover", "rewrite", "leak-scan"] {
        let n = spans
            .get(cat)
            .and_then(|c| c.get("spans"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing span category {cat:?}"));
        assert!(n > 0, "category {cat:?} recorded no spans");
    }
    assert!(timing.get("jobs").is_some());

    let det = run.metrics_deterministic_json();
    assert!(det.get("spans").is_none(), "spans are wall-clock data");
    let counters = det.get("counters").expect("counters");
    if let Json::Obj(pairs) = counters {
        for (k, _) in pairs {
            assert!(
                !k.starts_with("phase.rewrite.") && !k.starts_with("gate."),
                "resume-variant counter {k:?} leaked into the deterministic section"
            );
        }
    } else {
        panic!("counters must be an object");
    }
}
