//! Determinism contracts: "all identifiers must be anonymized in a
//! consistent manner" (§3.2) across re-runs, and the batch pipeline's
//! guarantee that worker count never changes a byte of output.

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::core::{Anonymizer, AnonymizerConfig, BatchInput, BatchPipeline};
use confanon::workflow::anonymize_corpus;

fn corpus() -> Vec<(String, String)> {
    let ds = generate_dataset(&DatasetSpec {
        seed: 0xDEAD_BEEF,
        networks: 1,
        mean_routers: 6,
        backbone_fraction: 0.5,
    });
    ds.networks[0]
        .routers
        .iter()
        .map(|r| (format!("{}.cfg", r.hostname), r.config.clone()))
        .collect()
}

/// Re-running the anonymizer on the same network under the same secret
/// must reproduce the output byte for byte.
#[test]
fn same_network_same_secret_is_byte_identical() {
    let files = corpus();
    let run = |secret: &[u8]| {
        let mut a = Anonymizer::new(AnonymizerConfig::new(secret.to_vec()));
        files
            .iter()
            .map(|(_, t)| a.anonymize_config(t).text)
            .collect::<Vec<String>>()
    };
    let first = run(b"owner-secret");
    let second = run(b"owner-secret");
    assert_eq!(first, second);
    // And the keying matters: a different secret changes the output.
    assert_ne!(first, run(b"other-secret"));
}

/// The batch pipeline's headline guarantee, end to end: any worker count
/// produces the same bytes as a sequential run.
#[test]
fn batch_output_independent_of_job_count() {
    let files = corpus();
    let inputs: Vec<BatchInput> = files
        .iter()
        .map(|(name, text)| BatchInput {
            name: name.clone(),
            text: text.clone(),
        })
        .collect();
    let cfg = || AnonymizerConfig::new(b"owner-secret".to_vec());
    let sequential = BatchPipeline::new(cfg(), 1).run(&inputs);
    for jobs in [2, 8] {
        let parallel = BatchPipeline::new(cfg(), jobs).run(&inputs);
        for (s, p) in sequential.outputs.iter().zip(&parallel.outputs) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.text, p.text, "jobs={jobs} diverged on {}", s.name);
        }
        assert_eq!(sequential.totals, parallel.totals);
    }
}

/// The workflow wrapper agrees with the plain per-file API — the batch
/// pipeline is a faster spelling of the same function, not a new one.
#[test]
fn corpus_workflow_matches_plain_sequential_api() {
    let files = corpus();
    let mut plain = Anonymizer::new(AnonymizerConfig::new(b"owner-secret".to_vec()));
    let expect: Vec<String> = files
        .iter()
        .map(|(_, t)| plain.anonymize_config(t).text)
        .collect();
    let run = anonymize_corpus(&files, b"owner-secret", 4);
    let got: Vec<&String> = run.report.outputs.iter().map(|o| &o.text).collect();
    assert_eq!(expect.iter().collect::<Vec<_>>(), got);
    // The warmed anonymizer carries the same audit state.
    assert_eq!(
        plain.leak_record().asns,
        run.anonymizer.leak_record().asns
    );
    assert_eq!(plain.emitted_exclusions(), run.anonymizer.emitted_exclusions());
}

/// A discovery pass warms state without changing what a later emit
/// produces (cold emit == discover-then-emit), per file.
#[test]
fn warm_emit_equals_cold_emit() {
    let files = corpus();
    let mut cold = Anonymizer::new(AnonymizerConfig::new(b"owner-secret".to_vec()));
    let cold_out: Vec<String> = files
        .iter()
        .map(|(_, t)| cold.anonymize_config(t).text)
        .collect();

    let mut warm = Anonymizer::new(AnonymizerConfig::new(b"owner-secret".to_vec()));
    for (_, t) in &files {
        warm.discover_config(t);
    }
    let warm_out: Vec<String> = files
        .iter()
        .map(|(_, t)| warm.anonymize_config(t).text)
        .collect();

    assert_eq!(cold_out, warm_out);
}
