//! Determinism contracts: "all identifiers must be anonymized in a
//! consistent manner" (§3.2) across re-runs, and the batch pipeline's
//! guarantee that worker count never changes a byte of output — even
//! when files fail mid-pipeline or the leak gate quarantines outputs.

use confanon::confgen::{generate_dataset, DatasetSpec};
use confanon::core::{
    sanitize_bytes, Anonymizer, AnonymizerConfig, BatchInput, BatchPhase, BatchPipeline, RuleId,
};
use confanon::workflow::{anonymize_corpus, anonymize_corpus_gated};
use confanon_testkit::chaos::ChaosMutator;

fn corpus() -> Vec<(String, String)> {
    let ds = generate_dataset(&DatasetSpec {
        seed: 0xDEAD_BEEF,
        networks: 1,
        mean_routers: 6,
        backbone_fraction: 0.5,
    });
    ds.networks[0]
        .routers
        .iter()
        .map(|r| (format!("{}.cfg", r.hostname), r.config.clone()))
        .collect()
}

/// Re-running the anonymizer on the same network under the same secret
/// must reproduce the output byte for byte.
#[test]
fn same_network_same_secret_is_byte_identical() {
    let files = corpus();
    let run = |secret: &[u8]| {
        let mut a = Anonymizer::new(AnonymizerConfig::new(secret.to_vec()));
        files
            .iter()
            .map(|(_, t)| a.anonymize_config(t).text)
            .collect::<Vec<String>>()
    };
    let first = run(b"owner-secret");
    let second = run(b"owner-secret");
    assert_eq!(first, second);
    // And the keying matters: a different secret changes the output.
    assert_ne!(first, run(b"other-secret"));
}

/// The batch pipeline's headline guarantee, end to end: any worker count
/// produces the same bytes as a sequential run.
#[test]
fn batch_output_independent_of_job_count() {
    let files = corpus();
    let inputs: Vec<BatchInput> = files
        .iter()
        .map(|(name, text)| BatchInput {
            name: name.clone(),
            text: text.clone(),
        })
        .collect();
    let cfg = || AnonymizerConfig::new(b"owner-secret".to_vec());
    let sequential = BatchPipeline::new(cfg(), 1).run(&inputs);
    for jobs in [2, 8] {
        let parallel = BatchPipeline::new(cfg(), jobs).run(&inputs);
        for (s, p) in sequential.outputs.iter().zip(&parallel.outputs) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.text, p.text, "jobs={jobs} diverged on {}", s.name);
        }
        assert_eq!(sequential.totals, parallel.totals);
    }
}

/// The workflow wrapper agrees with the plain per-file API — the batch
/// pipeline is a faster spelling of the same function, not a new one.
#[test]
fn corpus_workflow_matches_plain_sequential_api() {
    let files = corpus();
    let mut plain = Anonymizer::new(AnonymizerConfig::new(b"owner-secret".to_vec()));
    let expect: Vec<String> = files
        .iter()
        .map(|(_, t)| plain.anonymize_config(t).text)
        .collect();
    let run = anonymize_corpus(&files, b"owner-secret", 4);
    let got: Vec<&String> = run.report.outputs.iter().map(|o| &o.text).collect();
    assert_eq!(expect.iter().collect::<Vec<_>>(), got);
    // The warmed anonymizer carries the same audit state.
    assert_eq!(
        plain.leak_record().asns,
        run.anonymizer.leak_record().asns
    );
    assert_eq!(plain.emitted_exclusions(), run.anonymizer.emitted_exclusions());
}

/// A discovery pass warms state without changing what a later emit
/// produces (cold emit == discover-then-emit), per file.
#[test]
fn warm_emit_equals_cold_emit() {
    let files = corpus();
    let mut cold = Anonymizer::new(AnonymizerConfig::new(b"owner-secret".to_vec()));
    let cold_out: Vec<String> = files
        .iter()
        .map(|(_, t)| cold.anonymize_config(t).text)
        .collect();

    let mut warm = Anonymizer::new(AnonymizerConfig::new(b"owner-secret".to_vec()));
    for (_, t) in &files {
        warm.discover_config(t);
    }
    let warm_out: Vec<String> = files
        .iter()
        .map(|(_, t)| warm.anonymize_config(t).text)
        .collect();

    assert_eq!(cold_out, warm_out);
}

/// A chaos-mutated corpus, sanitized the way the CLI sanitizes file
/// reads (the pipeline API takes `String`, so the byte-level repair
/// happens at the boundary).
fn chaos_corpus(seed: u64) -> Vec<(String, String)> {
    let mut mutator = ChaosMutator::new(seed);
    corpus()
        .into_iter()
        .map(|(name, text)| {
            let mutated = mutator.mutate(text.as_bytes());
            let (repaired, _) = sanitize_bytes(&mutated.bytes);
            (name, repaired)
        })
        .collect()
}

/// The full fail-closed result — released bytes, quarantine set, *and*
/// the failure report — must be byte-identical at any job count, even
/// over a hostile corpus with panicking files in the middle of it.
#[test]
fn chaos_corpus_identical_across_job_counts_including_failure_report() {
    let mut files = chaos_corpus(0xC4A0_5EED);
    // Plant deterministic panics in two files so the failure report has
    // entries whose ordering could diverge under racing workers.
    files[1].1.push_str("\nCHAOS-FAULT marker\n");
    files[4].1.push_str("\nCHAOS-FAULT marker\n");
    let cfg = || {
        let mut c = AnonymizerConfig::new(b"owner-secret".to_vec());
        c.fault_marker = Some(("CHAOS-FAULT".to_string(), BatchPhase::Rewrite));
        c
    };

    let reference = anonymize_corpus_gated(&files, cfg(), 1);
    assert_eq!(reference.failures.len(), 2, "planted faults must fire");
    for jobs in [2, 8] {
        let run = anonymize_corpus_gated(&files, cfg(), jobs);
        let names = |r: &confanon::workflow::GatedCorpusRun| {
            (
                r.clean.iter().map(|o| (o.name.clone(), o.text.clone())).collect::<Vec<_>>(),
                r.quarantined
                    .iter()
                    .map(|q| (q.output.name.clone(), q.output.text.clone()))
                    .collect::<Vec<_>>(),
                r.failures
                    .iter()
                    .map(|f| (f.name.clone(), f.phase, f.cause.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(names(&reference), names(&run), "jobs={jobs}");
        // Including the machine-readable report, byte for byte.
        assert_eq!(
            reference.leak_report_json().to_string_pretty(),
            run.leak_report_json().to_string_pretty(),
            "jobs={jobs}"
        );
    }
}

/// A fresh random corpus for property runs (distinct topology per seed).
fn seeded_corpus(seed: u64) -> Vec<(String, String)> {
    let ds = generate_dataset(&DatasetSpec {
        seed: seed ^ 0x5EED_CAFE,
        networks: 1,
        mean_routers: 5,
        backbone_fraction: 0.5,
    });
    ds.networks[0]
        .routers
        .iter()
        .map(|r| (format!("{}.cfg", r.hostname), r.config.clone()))
        .collect()
}

fn batch_inputs(files: &[(String, String)]) -> Vec<BatchInput> {
    files
        .iter()
        .map(|(name, text)| BatchInput {
            name: name.clone(),
            text: text.clone(),
        })
        .collect()
}

/// `(name, payload)` pairs: released outputs and reported failures.
type NamedPairs = Vec<(String, String)>;

/// `(name, bytes)` pairs plus the failure report — everything a manifest
/// is derived from (digests are a pure function of released bytes).
fn run_view(report: &confanon::core::BatchReport) -> (NamedPairs, NamedPairs) {
    (
        report
            .outputs
            .iter()
            .map(|o| (o.name.clone(), o.text.clone()))
            .collect(),
        report
            .failures
            .iter()
            .map(|f| (f.name.clone(), f.cause.clone()))
            .collect(),
    )
}

/// Warmed-anonymizer fingerprint: the state a resumed run would inherit.
fn state_view(p: &BatchPipeline) -> (Vec<String>, confanon::core::LeakRecord, (usize, usize)) {
    (
        p.anonymizer().emitted_exclusions(),
        p.anonymizer().leak_record().clone(),
        p.anonymizer().trie_node_counts(),
    )
}

confanon_testkit::props! {
    cases = 4;

    /// PR-5 tentpole property: sharded discovery is observationally
    /// identical to the sequential baseline on random corpora — released
    /// bytes, rule-fire totals, and the warmed state that manifests and
    /// resumed runs are derived from — at every worker count.
    fn sharded_discovery_equals_sequential_on_random_corpora(seed in 0u64..1_000_000) {
        let files = seeded_corpus(seed);
        let inputs = batch_inputs(&files);
        let cfg = || AnonymizerConfig::new(b"owner-secret".to_vec());
        let mut reference = BatchPipeline::new(cfg(), 4).with_sequential_discovery(true);
        let ref_report = reference.run(&inputs);
        for jobs in [1usize, 2, 4, 8] {
            let mut sharded = BatchPipeline::new(cfg(), jobs);
            let report = sharded.run(&inputs);
            assert_eq!(run_view(&ref_report), run_view(&report), "jobs={jobs}");
            assert_eq!(ref_report.totals, report.totals, "jobs={jobs}");
            assert_eq!(
                state_view(&reference),
                state_view(&sharded),
                "warmed state diverged at jobs={jobs}"
            );
        }
    }

    /// The same equivalence over chaos-mutated corpora with a planted
    /// discovery-phase panic: the fail-closed path (who failed, with what
    /// cause, and what still got released) must not depend on sharding.
    fn sharded_discovery_equals_sequential_under_chaos(seed in 0u64..1_000_000) {
        let mut files = chaos_corpus(seed);
        files[2].1.push_str("\nCHAOS-FAULT marker\n");
        let inputs = batch_inputs(&files);
        let cfg = || {
            let mut c = AnonymizerConfig::new(b"owner-secret".to_vec());
            c.fault_marker = Some(("CHAOS-FAULT".to_string(), BatchPhase::Discover));
            c
        };
        let mut reference = BatchPipeline::new(cfg(), 4).with_sequential_discovery(true);
        let ref_report = reference.run(&inputs);
        assert!(!ref_report.failures.is_empty(), "planted fault must fire");
        for jobs in [2usize, 8] {
            let mut sharded = BatchPipeline::new(cfg(), jobs);
            let report = sharded.run(&inputs);
            assert_eq!(run_view(&ref_report), run_view(&report), "jobs={jobs}");
            assert_eq!(ref_report.totals, report.totals, "jobs={jobs}");
            assert_eq!(state_view(&reference), state_view(&sharded), "jobs={jobs}");
        }
    }

    /// Prefilter property: the first-byte/substring fast path changes no
    /// released byte and no per-rule fire count versus running every line
    /// through the full contextual matcher — on clean and chaos corpora.
    fn prefilter_equals_full_matcher(seed in 0u64..1_000_000) {
        for files in [seeded_corpus(seed), chaos_corpus(seed)] {
            let inputs = batch_inputs(&files);
            let cfg = |prefilter: bool| {
                let mut c = AnonymizerConfig::new(b"owner-secret".to_vec());
                c.disable_prefilter = !prefilter;
                c
            };
            let fast = BatchPipeline::new(cfg(true), 4).run(&inputs);
            let full = BatchPipeline::new(cfg(false), 4).run(&inputs);
            assert_eq!(run_view(&full), run_view(&fast));
            assert_eq!(
                full.totals.rule_fires_complete(),
                fast.totals.rule_fires_complete(),
                "per-rule fire counts must be prefilter-invariant"
            );
        }
    }
}

/// Golden fail-closed test: a leak planted by disabling a locator rule
/// (the §6.1 ablation experiment) is caught by the gate and quarantined —
/// the releasable set never contains the leaking bytes.
#[test]
fn planted_leak_is_quarantined_not_emitted() {
    // File A maps ASN 701 via `router bgp` (R06 records + maps it).
    // File B mentions 701 only as `remote-as`; with R07 ablated the
    // literal survives emission and the gate must catch it.
    let files = vec![
        (
            "a.cfg".to_string(),
            "router bgp 701\n neighbor 10.0.0.2 remote-as 701\n".to_string(),
        ),
        (
            "b.cfg".to_string(),
            "router bgp 65001\n neighbor 10.0.0.1 remote-as 701\n".to_string(),
        ),
    ];
    let cfg = AnonymizerConfig::new(b"owner-secret".to_vec()).without_rule(RuleId::R07NeighborRemoteAs);
    let run = anonymize_corpus_gated(&files, cfg, 2);

    assert!(
        !run.quarantined.is_empty(),
        "ablated locator must trip the gate"
    );
    for q in &run.quarantined {
        assert!(q.output.text.contains("701"), "quarantine holds the leak");
        assert!(!q.report.is_clean());
    }
    for o in &run.clean {
        assert!(!o.text.contains("701"), "released bytes must be clean");
    }
    // The machine-readable report names the quarantined file and
    // round-trips through the JSON parser.
    let json = run.leak_report_json().to_string_pretty();
    let parsed = confanon_testkit::json::Json::parse(&json).expect("report parses");
    assert_eq!(
        parsed.get("quarantined_files").and_then(|v| v.as_u64()),
        Some(run.quarantined.len() as u64)
    );

    // With all 28 rules on, the same corpus passes the gate cleanly.
    let clean_run = anonymize_corpus_gated(
        &files,
        AnonymizerConfig::new(b"owner-secret".to_vec()),
        2,
    );
    assert!(clean_run.quarantined.is_empty());
    assert_eq!(clean_run.clean.len(), files.len());
}
