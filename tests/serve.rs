//! Integration suite for `confanon serve`: the robustness proof
//! obligations of the service mode, driven end-to-end through the real
//! binary and the independent `CONFANON/1` wire client.
//!
//! What is proven here, each against a live daemon process:
//!
//! 1. **Isolation + equivalence** — K clients interleave requests
//!    across tenants (one of them hostile, fed chaos-mutated configs)
//!    and every clean tenant's responses are byte-identical to a solo
//!    `confanon batch` run over the same files in the same order.
//! 2. **Back-pressure** — a saturated bounded queue answers `BUSY`
//!    (retriable), never buffers unboundedly, and a cooperative retry
//!    loop eventually succeeds.
//! 3. **Panic containment** — a poisoned request fails closed with an
//!    error frame; the tenant keeps serving, other tenants never
//!    notice, and the resident state shows no trace of the poison.
//! 4. **Graceful drain** — SIGTERM lets in-flight requests finish,
//!    flushes every tenant's state atomically, and exits 0; a restart
//!    serves warm, byte-identical mappings.
//! 5. **Crash recovery** — a simulated kill -9 (`CONFANON_CRASH_AFTER`)
//!    at *every* durable-write crash point restarts into a serving
//!    daemon whose replayed outputs are byte-identical to an
//!    uninterrupted session.
//! 6. **Torn-state quarantine** — a corrupted tenant state dir
//!    quarantines that tenant with a distinct error while healthy
//!    tenants serve; the torn evidence is never overwritten.
//!
//! Plus the satellite: `confanon batch` under SIGTERM finishes the
//! in-flight atomic write and exits with the resumable code 5.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use confanon_testkit::json::Json;
use confanon_testkit::serveclient::ServeClient;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_confanon"))
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("confanon-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mktemp");
    d
}

#[cfg(unix)]
extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

/// Writes a `confanon.toml` with one `[tenant.NAME]` section per entry,
/// each keyed by the convention `<name>-secret` (mirrored by the solo
/// batch runs the equivalence tests compare against).
fn write_config(path: &Path, tenants: &[(&str, &Path)], extra: &str) {
    let mut text = String::from(extra);
    for (name, dir) in tenants {
        text.push_str(&format!(
            "[tenant.{name}]\nsecret = \"{name}-secret\"\nstate_dir = \"{}\"\n",
            dir.display()
        ));
    }
    std::fs::write(path, text).expect("write config");
}

/// A live daemon child with its discovered endpoint. Killed on drop so
/// a failing assertion never leaks a listener.
struct Daemon {
    child: Child,
    endpoint: String,
}

impl Daemon {
    fn spawn(config: &Path, port_file: &Path, envs: &[(&str, &str)]) -> Daemon {
        match Daemon::try_spawn(config, port_file, envs) {
            Ok(d) => d,
            Err(e) => panic!("daemon failed to start: {e}"),
        }
    }

    /// Spawns and waits for the port file. `Err` means the child exited
    /// before advertising — which the crash-point test provokes
    /// deliberately (crash point 1 is the port-file write itself).
    fn try_spawn(
        config: &Path,
        port_file: &Path,
        envs: &[(&str, &str)],
    ) -> Result<Daemon, String> {
        let _ = std::fs::remove_file(port_file);
        let mut cmd = bin();
        cmd.arg("serve")
            .arg("--config")
            .arg(config)
            .args(["--listen", "127.0.0.1:0"])
            .arg("--port-file")
            .arg(port_file)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn daemon");
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Ok(text) = std::fs::read_to_string(port_file) {
                let endpoint = text.trim().to_string();
                if !endpoint.is_empty() {
                    return Ok(Daemon { child, endpoint });
                }
            }
            if let Ok(Some(status)) = child.try_wait() {
                return Err(format!("daemon exited before advertising: {status}"));
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                let _ = child.wait();
                panic!("daemon never wrote its port file");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn connect(&self) -> ServeClient {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match ServeClient::connect(&self.endpoint) {
                Ok(c) => return c,
                Err(e) if Instant::now() > deadline => panic!("connect {}: {e}", self.endpoint),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    #[cfg(unix)]
    fn sigterm(&self) {
        unsafe {
            kill(self.child.id() as i32, 15);
        }
    }

    /// Waits (bounded) for the child to exit and returns its status.
    fn wait(mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status;
            }
            if Instant::now() > deadline {
                let _ = self.child.kill();
                let _ = self.child.wait();
                panic!("daemon did not exit within the drain deadline");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Generates a deterministic flat corpus: `(name, bytes)` pairs in the
/// sorted-name order both serve clients and batch discovery use.
fn flat_corpus(root: &Path, tag: &str, seed: u64, routers: usize) -> Vec<(String, Vec<u8>)> {
    let gen = root.join(format!("gen-{tag}"));
    let status = bin()
        .args(["generate", "--networks", "1"])
        .args(["--routers", &routers.to_string()])
        .args(["--seed", &seed.to_string()])
        .arg("--out-dir")
        .arg(&gen)
        .stderr(Stdio::null())
        .status()
        .expect("run generate");
    assert!(status.success(), "generate failed");
    let mut files = Vec::new();
    collect_cfgs(&gen, &mut files);
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().expect("name").to_string_lossy().into_owned();
            (name, std::fs::read(&p).expect("read cfg"))
        })
        .collect()
}

fn collect_cfgs(dir: &Path, out: &mut Vec<PathBuf>) {
    for e in std::fs::read_dir(dir).expect("read_dir").flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_cfgs(&p, out);
        } else if p.extension().is_some_and(|x| x == "cfg") {
            out.push(p);
        }
    }
}

/// Chaos-mutated (hostile) corpus for the hostile-tenant leg.
fn chaos_corpus(root: &Path, tag: &str, seed: u64, count: usize) -> Vec<(String, Vec<u8>)> {
    let dir = root.join(format!("chaos-{tag}"));
    let status = bin()
        .args(["chaos", "--seed", &seed.to_string()])
        .args(["--count", &count.to_string()])
        .arg("--out-dir")
        .arg(&dir)
        .stderr(Stdio::null())
        .status()
        .expect("run chaos");
    assert!(status.success(), "chaos failed");
    let mut files = Vec::new();
    collect_cfgs(&dir, &mut files);
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().expect("name").to_string_lossy().into_owned();
            (name, std::fs::read(&p).expect("read chaos cfg"))
        })
        .collect()
}

/// Runs `confanon batch` solo over `files` and returns `name → bytes`
/// of the released outputs — the ground truth the daemon must match.
fn solo_batch(root: &Path, tag: &str, secret: &str, files: &[(String, Vec<u8>)]) -> BTreeMap<String, Vec<u8>> {
    let corpus = root.join(format!("batch-{tag}-in"));
    std::fs::create_dir_all(&corpus).expect("mk corpus");
    for (name, bytes) in files {
        std::fs::write(corpus.join(name), bytes).expect("write input");
    }
    let out = root.join(format!("batch-{tag}-out"));
    let status = bin()
        .args(["batch", "--secret", secret])
        .arg("--out-dir")
        .arg(&out)
        .arg(&corpus)
        .stderr(Stdio::null())
        .status()
        .expect("run batch");
    assert!(status.success(), "solo batch failed for {tag}");
    let mut released = BTreeMap::new();
    for e in std::fs::read_dir(&out).expect("read out").flatten() {
        let p = e.path();
        if p.extension().is_some_and(|x| x == "anon") {
            let name = p
                .file_stem()
                .expect("stem")
                .to_string_lossy()
                .into_owned();
            released.insert(name, std::fs::read(&p).expect("read anon"));
        }
    }
    released
}

// ---------------------------------------------------------------------
// 1. Isolation + equivalence under interleaved multi-client load
// ---------------------------------------------------------------------

confanon_testkit::props! {
    cases = 3;

    /// K clients interleave requests across tenants — including one
    /// hostile tenant fed chaos-mutated configs — and each clean
    /// tenant's responses are byte-identical to a solo batch run over
    /// the same inputs in the same order. The hostile tenant may be
    /// quarantined or error per request, but must never take the
    /// daemon down or perturb its neighbors.
    fn interleaved_tenants_match_solo_batch(seed in 0u64..1_000_000) {
        let root = std::env::temp_dir().join(format!(
            "confanon-serve-interleave-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mktemp");

        let alpha_files = flat_corpus(&root, "alpha", seed.wrapping_add(11), 3);
        let beta_files = flat_corpus(&root, "beta", seed.wrapping_add(29), 3);
        let gamma_files = chaos_corpus(&root, "gamma", seed.wrapping_add(47), 3);
        let alpha_golden = solo_batch(&root, "alpha", "alpha-secret", &alpha_files);
        let beta_golden = solo_batch(&root, "beta", "beta-secret", &beta_files);

        let config = root.join("confanon.toml");
        write_config(
            &config,
            &[
                ("alpha", &root.join("state-alpha")),
                ("beta", &root.join("state-beta")),
                ("gamma", &root.join("state-gamma")),
            ],
            "",
        );
        let daemon = Daemon::spawn(&config, &root.join("port"), &[]);

        let endpoint = daemon.endpoint.clone();
        let run_tenant = |tenant: &'static str,
                          files: Vec<(String, Vec<u8>)>,
                          delay_ms: u64|
         -> std::thread::JoinHandle<Vec<(String, String, Vec<u8>)>> {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&endpoint).expect("connect");
                let mut replies = Vec::new();
                for (name, bytes) in &files {
                    std::thread::sleep(Duration::from_millis(delay_ms));
                    let reply = client
                        .anon_with_retry(tenant, name, bytes, 100, Duration::from_millis(20))
                        .expect("request");
                    replies.push((name.clone(), reply.status, reply.payload));
                }
                replies
            })
        };

        // Seeded stagger: each client starts its requests on a
        // different cadence so the cross-tenant interleaving varies by
        // seed while each tenant's *own* order stays fixed (the order
        // the equivalence contract is defined over).
        let h_alpha = run_tenant("alpha", alpha_files.clone(), seed % 5);
        let h_beta = run_tenant("beta", beta_files.clone(), (seed / 5) % 7);
        let h_gamma = run_tenant("gamma", gamma_files.clone(), (seed / 35) % 3);

        let alpha_replies = h_alpha.join().expect("alpha client");
        let beta_replies = h_beta.join().expect("beta client");
        let gamma_replies = h_gamma.join().expect("gamma client");

        for (replies, golden, tenant) in [
            (&alpha_replies, &alpha_golden, "alpha"),
            (&beta_replies, &beta_golden, "beta"),
        ] {
            assert_eq!(replies.len(), golden.len(), "{tenant}: reply count");
            for (name, status, payload) in replies {
                assert_eq!(status, "OK", "{tenant}/{name}: status");
                let want = golden.get(name).unwrap_or_else(|| {
                    panic!("{tenant}/{name}: missing from solo batch")
                });
                assert_eq!(
                    payload, want,
                    "seed {seed}: {tenant}/{name} diverges from solo batch"
                );
            }
        }
        // The hostile tenant answered every frame with a protocol
        // status — containment, not a dead socket.
        for (name, status, _) in &gamma_replies {
            assert!(
                matches!(
                    status.as_str(),
                    "OK" | "QUARANTINED" | "TENANT-QUARANTINED" | "ERROR"
                ),
                "gamma/{name}: unexpected status {status}"
            );
        }

        // The daemon survived the hostile tenant and drains cleanly.
        let mut control = daemon.connect();
        let bye = control.shutdown().expect("shutdown frame");
        assert_eq!(bye.status, "BYE");
        let status = daemon.wait();
        assert!(status.success(), "drain exit: {status}");
        let _ = std::fs::remove_dir_all(&root);
    }
}

// ---------------------------------------------------------------------
// 2. Back-pressure
// ---------------------------------------------------------------------

#[test]
fn saturated_queue_answers_retriable_busy() {
    let root = tmpdir("busy");
    let config = root.join("confanon.toml");
    write_config(
        &config,
        &[("alpha", &root.join("state-alpha"))],
        "queue_depth = 1\n",
    );
    let daemon = Daemon::spawn(
        &config,
        &root.join("port"),
        &[
            ("CONFANON_SERVE_SLEEP_MARKER", "HOLD-THE-WORKER"),
            ("CONFANON_SERVE_SLEEP_MS", "600"),
        ],
    );

    // Connection A occupies the single worker for 600 ms.
    let endpoint = daemon.endpoint.clone();
    let slow = std::thread::spawn(move || {
        let mut c = ServeClient::connect(&endpoint).expect("connect A");
        c.anon("alpha", "slow.cfg", b"! HOLD-THE-WORKER\nhostname slow\n")
            .expect("slow request")
    });
    std::thread::sleep(Duration::from_millis(150));

    // Connection B fills the depth-1 queue and blocks on its reply.
    let endpoint = daemon.endpoint.clone();
    let queued = std::thread::spawn(move || {
        let mut c = ServeClient::connect(&endpoint).expect("connect B");
        c.anon("alpha", "queued.cfg", b"hostname queued\n")
            .expect("queued request")
    });
    std::thread::sleep(Duration::from_millis(150));

    // Connection C finds the queue full: BUSY, retriable, immediately.
    let mut c = daemon.connect();
    let busy = c
        .anon("alpha", "rejected.cfg", b"hostname rejected\n")
        .expect("busy request");
    assert_eq!(busy.status, "BUSY", "payload: {}", busy.text());
    assert!(busy.retriable());

    // The cooperative retry loop the contract expects succeeds once
    // the worker drains.
    let retried = c
        .anon_with_retry(
            "alpha",
            "rejected.cfg",
            b"hostname rejected\n",
            100,
            Duration::from_millis(50),
        )
        .expect("retry loop");
    assert_eq!(retried.status, "OK", "payload: {}", retried.text());

    assert_eq!(slow.join().expect("A").status, "OK");
    assert_eq!(queued.join().expect("B").status, "OK");

    // The rejection is visible in the daemon section of the stats frame.
    let stats = c.stats().expect("stats");
    assert_eq!(stats.status, "OK");
    let doc = Json::parse(&stats.text()).expect("stats json");
    let busy_count = doc
        .get("daemon")
        .and_then(|d| d.get("busy_rejections"))
        .and_then(Json::as_u64)
        .expect("busy_rejections");
    assert!(busy_count >= 1, "busy_rejections = {busy_count}");

    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// 3. Panic containment
// ---------------------------------------------------------------------

#[test]
fn poisoned_request_fails_closed_without_touching_neighbors() {
    let root = tmpdir("poison");
    let config = root.join("confanon.toml");
    write_config(
        &config,
        &[
            ("alpha", &root.join("state-alpha")),
            ("beta", &root.join("state-beta")),
        ],
        "",
    );
    let daemon = Daemon::spawn(
        &config,
        &root.join("port"),
        &[("CONFANON_SERVE_FAULT_MARKER", "POISON-PILL-7")],
    );
    let mut c = daemon.connect();

    let good = b"hostname r1\nrouter bgp 65001\n neighbor 10.3.2.1 remote-as 1239\n";
    let first = c.anon("alpha", "good.cfg", good).expect("first");
    assert_eq!(first.status, "OK");

    let poisoned = c
        .anon("alpha", "bad.cfg", b"hostname x\n! POISON-PILL-7\n")
        .expect("poisoned");
    assert_eq!(poisoned.status, "ERROR");
    assert!(
        poisoned.text().contains("panic contained"),
        "payload: {}",
        poisoned.text()
    );

    // The tenant keeps serving — and deterministically: the poisoned
    // request left no trace, so a replay of the first file is
    // byte-identical (sticky mappings, untouched resident state).
    let replay = c.anon("alpha", "good.cfg", good).expect("replay");
    assert_eq!(replay.status, "OK");
    assert_eq!(replay.payload, first.payload);

    // The neighbor tenant never noticed.
    let beta = c.anon("beta", "b.cfg", good).expect("beta");
    assert_eq!(beta.status, "OK");

    // The containment is visible per tenant in the stats frame, and
    // the tenant's health is still `serving`.
    let doc = Json::parse(&c.stats().expect("stats").text()).expect("stats json");
    let alpha_snap = doc.get("tenants").and_then(|t| t.get("alpha")).expect("alpha snap");
    assert_eq!(alpha_snap.get("health").and_then(Json::as_str), Some("serving"));
    assert_eq!(
        alpha_snap
            .get("counters")
            .and_then(|cs| cs.get("serve.panics_contained"))
            .and_then(Json::as_u64),
        Some(1)
    );

    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// 4. Graceful drain (SIGTERM) + warm restart
// ---------------------------------------------------------------------

#[cfg(unix)]
#[test]
fn sigterm_drains_flushes_every_tenant_and_restarts_warm() {
    let root = tmpdir("drain");
    let config = root.join("confanon.toml");
    // flush = drain makes the drain flush *the* persistence event:
    // nothing is durable until the SIGTERM path runs.
    write_config(
        &config,
        &[
            ("alpha", &root.join("state-alpha")),
            ("beta", &root.join("state-beta")),
        ],
        "flush = \"drain\"\n",
    );
    let files = [
        ("r1.cfg", &b"hostname r1\ninterface Ethernet0\n ip address 10.1.2.3 255.255.255.0\n"[..]),
        ("r2.cfg", &b"hostname r2\nrouter bgp 65010\n neighbor 10.1.2.9 remote-as 701\n"[..]),
    ];

    let daemon = Daemon::spawn(&config, &root.join("port"), &[]);
    let mut c = daemon.connect();
    let mut first_run: BTreeMap<(String, String), Vec<u8>> = BTreeMap::new();
    for tenant in ["alpha", "beta"] {
        for (name, bytes) in &files {
            let reply = c.anon(tenant, name, bytes).expect("request");
            assert_eq!(reply.status, "OK");
            first_run.insert((tenant.to_string(), name.to_string()), reply.payload);
        }
    }
    assert!(
        !root.join("state-alpha").join("state.json").exists(),
        "flush=drain must not persist before the drain"
    );

    daemon.sigterm();
    let status = daemon.wait();
    assert!(status.success(), "SIGTERM drain must exit 0, got {status}");
    for tenant in ["state-alpha", "state-beta"] {
        assert!(
            root.join(tenant).join("state.json").exists(),
            "{tenant}: drain must flush the state document"
        );
    }

    // Warm restart: the same inputs replay byte-identically.
    let daemon = Daemon::spawn(&config, &root.join("port"), &[]);
    let mut c = daemon.connect();
    for tenant in ["alpha", "beta"] {
        for (name, bytes) in &files {
            let reply = c.anon(tenant, name, bytes).expect("warm request");
            assert_eq!(reply.status, "OK");
            let want = &first_run[&(tenant.to_string(), name.to_string())];
            assert_eq!(&reply.payload, want, "{tenant}/{name}: warm replay diverged");
        }
    }
    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// 5. Crash recovery at every durable-write crash point
// ---------------------------------------------------------------------

#[test]
fn crash_at_every_durable_write_recovers_byte_identical() {
    let root = tmpdir("crash");
    // Hostname words are multi-letter on purpose: a single letter in
    // a-f would legitimately "leak" into hex-hashed tokens and gate
    // the request (batch agrees — that's the gate working).
    let files = [
        ("f1.cfg", &b"hostname routerone\ninterface Ethernet0\n ip address 10.7.1.1 255.255.255.0\n"[..]),
        ("f2.cfg", &b"hostname routertwo\nrouter bgp 65020\n neighbor 10.7.1.2 remote-as 701\n"[..]),
        ("f3.cfg", &b"hostname routerthree\nip route 10.7.2.0 255.255.255.0 10.7.1.2\n"[..]),
    ];

    // Golden: one uninterrupted session, flush-per-request.
    let golden_cfg = root.join("golden.toml");
    write_config(&golden_cfg, &[("alpha", &root.join("state-golden"))], "");
    let daemon = Daemon::spawn(&golden_cfg, &root.join("port"), &[]);
    let mut c = daemon.connect();
    let mut golden: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for (name, bytes) in &files {
        let reply = c.anon("alpha", name, bytes).expect("golden request");
        assert_eq!(reply.status, "OK");
        golden.insert(name.to_string(), reply.payload);
    }
    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());

    // Durable writes of that session: the port file (1), one state
    // flush per request (3), one drain flush (1). Crash after each —
    // and one k beyond the last, which must serve to completion.
    for k in 1..=6u32 {
        let state = root.join(format!("state-k{k}"));
        let cfg = root.join(format!("k{k}.toml"));
        write_config(&cfg, &[("alpha", &state)], "");
        let port = root.join(format!("port-k{k}"));
        match Daemon::try_spawn(&cfg, &port, &[("CONFANON_CRASH_AFTER", &k.to_string())]) {
            Ok(daemon) => {
                // Drive the session; the abort can land mid-request, so
                // every wire error from here on is expected.
                for (name, bytes) in &files {
                    let Ok(mut c) = ServeClient::connect(&daemon.endpoint) else {
                        break;
                    };
                    let _ = c.anon("alpha", name, bytes);
                }
                if let Ok(mut c) = ServeClient::connect(&daemon.endpoint) {
                    let _ = c.shutdown();
                }
                let _ = daemon.wait();
            }
            Err(_) => {
                // Crash point 1: died writing the port file. Nothing
                // served; recovery below must still work from nothing.
            }
        }

        // Restart without the crash hook: the tenant must reload via
        // the verification path and replay byte-identically.
        let daemon = Daemon::spawn(&cfg, &port, &[]);
        let mut c = daemon.connect();
        for (name, bytes) in &files {
            let reply = c
                .anon_with_retry("alpha", name, bytes, 50, Duration::from_millis(20))
                .expect("recovery request");
            assert_eq!(reply.status, "OK", "k={k} {name}: {}", reply.text());
            assert_eq!(
                &reply.payload, &golden[*name],
                "k={k}: {name} diverged after crash recovery"
            );
        }
        assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
        assert!(daemon.wait().success(), "k={k}: recovered daemon must drain to 0");
    }
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// 6. Torn tenant state: distinct quarantine, healthy tenants serve
// ---------------------------------------------------------------------

#[test]
fn torn_tenant_state_quarantines_distinctly_while_neighbors_serve() {
    let root = tmpdir("torn");
    let beta_state = root.join("state-beta");
    std::fs::create_dir_all(&beta_state).expect("mk beta");
    let torn = b"{ \"schema\": \"confanon-state-v1\", torn mid-docu".to_vec();
    std::fs::write(beta_state.join("state.json"), &torn).expect("write torn");

    let config = root.join("confanon.toml");
    write_config(
        &config,
        &[("alpha", &root.join("state-alpha")), ("beta", &beta_state)],
        "",
    );
    let daemon = Daemon::spawn(&config, &root.join("port"), &[]);
    let mut c = daemon.connect();

    let good = b"hostname r1\nrouter bgp 65001\n neighbor 10.3.2.1 remote-as 1239\n";
    assert_eq!(c.anon("alpha", "a.cfg", good).expect("alpha").status, "OK");

    let refused = c.anon("beta", "b.cfg", good).expect("beta");
    assert_eq!(refused.status, "TENANT-QUARANTINED");
    assert!(
        refused.text().contains("state-quarantined"),
        "payload: {}",
        refused.text()
    );

    let doc = Json::parse(&c.stats().expect("stats").text()).expect("stats json");
    let beta_snap = doc.get("tenants").and_then(|t| t.get("beta")).expect("beta snap");
    assert_eq!(
        beta_snap.get("health").and_then(Json::as_str),
        Some("state-quarantined")
    );

    assert_eq!(c.shutdown().expect("shutdown").status, "BYE");
    assert!(daemon.wait().success());

    // The torn document is evidence: the drain must not overwrite it.
    assert_eq!(
        std::fs::read(beta_state.join("state.json")).expect("read torn"),
        torn,
        "drain overwrote a quarantined tenant's torn state"
    );
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// Satellite: batch SIGTERM → resumable exit 5
// ---------------------------------------------------------------------

#[cfg(unix)]
#[test]
fn batch_sigterm_exits_resumable_and_resume_completes() {
    let root = tmpdir("batch-term");
    let corpus = root.join("corpus");
    let status = bin()
        .args(["generate", "--networks", "2", "--routers", "6", "--seed", "77"])
        .arg("--out-dir")
        .arg(&corpus)
        .stderr(Stdio::null())
        .status()
        .expect("generate");
    assert!(status.success());

    // Golden uninterrupted run.
    let golden_out = root.join("out-golden");
    let status = bin()
        .args(["batch", "--secret", "term-secret"])
        .arg("--out-dir")
        .arg(&golden_out)
        .arg(&corpus)
        .stderr(Stdio::null())
        .status()
        .expect("golden batch");
    assert!(status.success());

    // Interrupted run: SIGTERM lands mid-run (the corpus is large
    // enough that 200 ms in, the pipeline is still working), the
    // publish loop stops after the in-flight atomic write, exit 5.
    let out = root.join("out-interrupted");
    let mut child = bin()
        .args(["batch", "--secret", "term-secret"])
        .arg("--out-dir")
        .arg(&out)
        .arg(&corpus)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn batch");
    std::thread::sleep(Duration::from_millis(200));
    unsafe {
        kill(child.id() as i32, 15);
    }
    let status = child.wait().expect("wait batch");
    assert_eq!(
        status.code(),
        Some(5),
        "SIGTERM mid-publish must exit resumable (5), got {status}"
    );
    assert!(
        out.join("run_manifest.json").exists(),
        "the journal must survive the interruption"
    );
    for e in std::fs::read_dir(&out).expect("read out").flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".fsx-tmp"),
            "staging residue after SIGTERM: {name}"
        );
    }

    // --resume completes the run; released bytes match the golden run.
    let status = bin()
        .args(["batch", "--secret", "term-secret", "--resume"])
        .arg("--out-dir")
        .arg(&out)
        .arg(&corpus)
        .stderr(Stdio::null())
        .status()
        .expect("resume batch");
    assert!(status.success(), "resume after SIGTERM: {status}");
    fn collect_anon(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
        for e in std::fs::read_dir(dir).expect("read_dir").flatten() {
            let p = e.path();
            if p.is_dir() {
                collect_anon(root, &p, out);
            } else if p.extension().is_some_and(|x| x == "anon") {
                out.push(p.strip_prefix(root).expect("rel").to_path_buf());
            }
        }
    }
    let mut golden_files: Vec<PathBuf> = Vec::new();
    collect_anon(&golden_out, &golden_out, &mut golden_files);
    assert!(!golden_files.is_empty(), "golden run released nothing");
    for rel in &golden_files {
        let resumed = std::fs::read(out.join(rel)).expect("resumed output");
        assert_eq!(
            resumed,
            std::fs::read(golden_out.join(rel)).expect("golden output"),
            "{}: resumed bytes diverge from golden",
            rel.display()
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
