//! CLI integration: generate → anonymize → validate, through the binary.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_confanon"))
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("confanon-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mktemp");
    d
}

#[test]
fn generate_anonymize_validate_round_trip() {
    let root = tmpdir("roundtrip");
    let gen_dir = root.join("gen");
    let status = bin()
        .args(["generate", "--networks", "1", "--routers", "4", "--seed", "11"])
        .arg("--out-dir")
        .arg(&gen_dir)
        .status()
        .expect("run generate");
    assert!(status.success());

    // The single network directory.
    let net_dir = std::fs::read_dir(&gen_dir)
        .expect("gen dir")
        .next()
        .expect("one network")
        .expect("entry")
        .path();
    let cfgs: Vec<std::path::PathBuf> = std::fs::read_dir(&net_dir)
        .expect("net dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    assert!(cfgs.len() >= 3);

    // Anonymize into post/.
    let post = root.join("post");
    let mut cmd = bin();
    cmd.args(["anonymize", "--secret", "cli-test-secret"])
        .arg("--out-dir")
        .arg(&post);
    for c in &cfgs {
        cmd.arg(c);
    }
    assert!(cmd.status().expect("run anonymize").success());

    // Strip the .anon suffix so the validate file sets line up.
    let pre = root.join("pre");
    std::fs::create_dir_all(&pre).expect("mk pre");
    for c in &cfgs {
        std::fs::copy(c, pre.join(c.file_name().expect("name"))).expect("copy");
    }
    for e in std::fs::read_dir(&post).expect("post dir") {
        let p = e.expect("entry").path();
        let name = p.file_name().expect("name").to_string_lossy().to_string();
        if let Some(stripped) = name.strip_suffix(".anon") {
            std::fs::rename(&p, p.with_file_name(stripped)).expect("rename");
        }
    }

    let out = bin()
        .arg("validate")
        .arg("--pre-dir")
        .arg(&pre)
        .arg("--post-dir")
        .arg(&post)
        .output()
        .expect("run validate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("suite1: PASS"), "{stdout}");
    assert!(stdout.contains("suite2: PASS"), "{stdout}");

    // The anonymized output must not contain the generated hostnames.
    let any_pre = std::fs::read_to_string(&cfgs[0]).expect("read pre");
    let hostname_line = any_pre
        .lines()
        .find(|l| l.starts_with("hostname"))
        .expect("hostname line");
    let hostname = hostname_line.split_whitespace().nth(1).expect("arg");
    for e in std::fs::read_dir(&post).expect("post dir") {
        let text = std::fs::read_to_string(e.expect("e").path()).expect("read post");
        assert!(!text.contains(hostname), "{hostname} survived");
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rules_lists_all_28() {
    let out = bin().arg("rules").output().expect("run rules");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.lines().filter(|l| l.starts_with('R')).count(),
        28,
        "{stdout}"
    );
    assert!(stdout.contains("as-path-regexp"));
}

#[test]
fn anonymize_requires_secret() {
    let out = bin()
        .args(["anonymize", "somefile.cfg"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--secret"));
}

#[test]
fn usage_on_no_args() {
    let out = bin().output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn anonymize_to_stdout() {
    let root = tmpdir("stdout");
    let cfg = root.join("r1.cfg");
    std::fs::write(&cfg, "hostname secret-router.corp.com\nrouter bgp 701\n").expect("write");
    let out = bin()
        .args(["anonymize", "--secret", "s"])
        .arg(&cfg)
        .output()
        .expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hostname h"));
    assert!(!stdout.contains("corp"));
    assert!(!stdout.contains("701"));
    assert!(Path::new(&cfg).exists(), "input untouched");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batch_clean_corpus_exits_zero_and_releases_everything() {
    let root = tmpdir("batch-clean");
    let gen_dir = root.join("gen");
    assert!(bin()
        .args(["generate", "--networks", "1", "--routers", "4", "--seed", "21"])
        .arg("--out-dir")
        .arg(&gen_dir)
        .status()
        .expect("generate")
        .success());

    let out_dir = root.join("out");
    let out = bin()
        .args(["batch", "--secret", "s", "--jobs", "2"])
        .arg("--out-dir")
        .arg(&out_dir)
        .arg(&gen_dir)
        .output()
        .expect("batch");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    // Outputs mirror the corpus layout (one subdirectory per network).
    fn count_anon(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .map(|p| {
                if p.is_dir() {
                    count_anon(&p)
                } else {
                    usize::from(p.extension().is_some_and(|x| x == "anon"))
                }
            })
            .sum()
    }
    assert!(count_anon(&out_dir) >= 3, "all files released");
    // No quarantine directory appears on a clean run.
    assert!(!root.join("out-quarantine").exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batch_planted_leak_exits_4_and_quarantines() {
    let root = tmpdir("batch-leak");
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).expect("mk corpus");
    std::fs::write(
        corpus.join("a.cfg"),
        "router bgp 701\n neighbor 10.0.0.2 remote-as 701\n",
    )
    .expect("write");
    std::fs::write(
        corpus.join("b.cfg"),
        "router bgp 65001\n neighbor 10.0.0.1 remote-as 701\n",
    )
    .expect("write");

    let out_dir = root.join("out");
    let quarantine = root.join("quar");
    let out = bin()
        .args(["batch", "--secret", "s", "--disable-rule", "neighbor-remote-as"])
        .arg("--out-dir")
        .arg(&out_dir)
        .arg("--quarantine-dir")
        .arg(&quarantine)
        .arg(&corpus)
        .output()
        .expect("batch");
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));

    // The leak report is machine-readable and names the quarantine.
    let report = std::fs::read_to_string(quarantine.join("leak_report.json")).expect("report");
    assert!(report.contains("confanon-leak-report-v1"));
    assert!(report.contains("\"quarantined\""));

    // Quarantined bytes are in the quarantine dir, not the output dir.
    let quarantined: Vec<String> = std::fs::read_dir(&quarantine)
        .expect("quar dir")
        .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().to_string()))
        .filter(|n| n.ends_with(".anon"))
        .collect();
    assert!(!quarantined.is_empty());
    for name in &quarantined {
        assert!(!out_dir.join(name).exists(), "{name} must not be released");
        let text = std::fs::read_to_string(quarantine.join(name)).expect("read");
        assert!(text.contains("701"), "quarantine holds the leak");
    }
    // Whatever was released is clean. (The run journal also lives in
    // the output directory; its hex digests are not config bytes.)
    if let Ok(entries) = std::fs::read_dir(&out_dir) {
        for e in entries {
            let path = e.expect("e").path();
            if path.extension().is_some_and(|x| x == "anon") {
                let text = std::fs::read_to_string(&path).expect("read");
                assert!(!text.contains("701"));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batch_unknown_rule_is_a_usage_error() {
    let root = tmpdir("batch-badrule");
    let out = bin()
        .args(["batch", "--secret", "s", "--disable-rule", "no-such-rule"])
        .arg(&root)
        .output()
        .expect("batch");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batch_jobs_validation_and_clamping() {
    let root = tmpdir("batch-jobs");
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).expect("mkdir");
    std::fs::write(corpus.join("r1.cfg"), "hostname r1\n").expect("write");

    // Absurd --jobs values are a usage error, not a silent thread army.
    let out = bin()
        .args(["batch", "--secret", "s", "--jobs", "100000"])
        .arg(&corpus)
        .output()
        .expect("batch");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("512"), "cap named in the error: {stderr}");

    // Non-numeric values stay a usage error.
    let out = bin()
        .args(["batch", "--secret", "s", "--jobs", "four"])
        .arg(&corpus)
        .output()
        .expect("batch");
    assert_eq!(out.status.code(), Some(2));

    // --jobs 0 (core count) and --jobs above the file count (clamped to
    // one worker per file) both run to a clean release.
    for jobs in ["0", "64"] {
        let out_dir = root.join(format!("out-{jobs}"));
        let out = bin()
            .args(["batch", "--secret", "s", "--jobs", jobs])
            .arg("--out-dir")
            .arg(&out_dir)
            .arg(&corpus)
            .output()
            .expect("batch");
        assert_eq!(
            out.status.code(),
            Some(0),
            "--jobs {jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let released = std::fs::read_dir(&out_dir)
            .expect("out dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "anon"))
            .count();
        assert_eq!(released, 1, "--jobs {jobs}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batch_missing_dir_is_an_io_error() {
    let out = bin()
        .args(["batch", "--secret", "s", "/nonexistent/confanon-test-dir"])
        .output()
        .expect("batch");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn chaos_corpus_is_deterministic_and_survives_batch() {
    let root = tmpdir("chaos-cli");
    let a = root.join("a");
    let b = root.join("b");
    for dir in [&a, &b] {
        assert!(bin()
            .args(["chaos", "--seed", "7", "--count", "6"])
            .arg("--out-dir")
            .arg(dir)
            .status()
            .expect("chaos")
            .success());
    }
    // Same seed, same bytes.
    for i in 0..6 {
        let name = format!("chaos-{i:03}.cfg");
        let fa = std::fs::read(a.join(&name)).expect("a");
        let fb = std::fs::read(b.join(&name)).expect("b");
        assert_eq!(fa, fb, "{name} differs between identical seeds");
    }

    // The hostile corpus goes through batch without tripping panic
    // containment: exit 0 or 4 (a mutation may re-expose a recorded
    // identifier), never 3, never a crash.
    let out = bin()
        .args(["batch", "--secret", "s", "--jobs", "4"])
        .arg("--out-dir")
        .arg(root.join("out"))
        .arg(&a)
        .output()
        .expect("batch");
    let code = out.status.code().expect("no signal/crash");
    assert!(
        code == 0 || code == 4,
        "unexpected exit {code}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batch_reads_non_utf8_input_lossily() {
    let root = tmpdir("batch-lossy");
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).expect("mk");
    std::fs::write(
        corpus.join("r1.cfg"),
        b"hostname r1\xFF\xFE.corp.example\nrouter bgp 65001\n",
    )
    .expect("write");
    let out = bin()
        .args(["batch", "--secret", "s"])
        .arg("--out-dir")
        .arg(root.join("out"))
        .arg(&corpus)
        .output()
        .expect("batch");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("repaired hostile input"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn validate_ignores_observability_artifacts_in_post_dir() {
    // Regression: metrics.json and *.trace.json written next to released
    // outputs must not enter the validate file set (they would parse as
    // "configs" and break the pre/post name match).
    let root = tmpdir("validate-obs");
    let pre = root.join("pre");
    let post = root.join("post");
    std::fs::create_dir_all(&pre).expect("mk pre");
    std::fs::create_dir_all(&post).expect("mk post");
    let cfg_text = "hostname r1\nrouter bgp 65001\n";
    std::fs::write(pre.join("r1.cfg"), cfg_text).expect("write pre");
    std::fs::write(post.join("r1.cfg"), cfg_text).expect("write post");
    std::fs::write(post.join("metrics.json"), "{}").expect("write metrics");
    std::fs::write(post.join("run.trace.json"), "{\"traceEvents\":[]}").expect("write trace");

    let out = bin()
        .arg("validate")
        .arg("--pre-dir")
        .arg(&pre)
        .arg("--post-dir")
        .arg(&post)
        .output()
        .expect("run validate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        !stderr.contains("file sets differ"),
        "observability artifacts entered the file set: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batch_ignores_observability_artifacts_in_corpus_dir() {
    // A prior run's metrics/trace files sitting inside the corpus tree
    // are bookkeeping, not input — discovery must skip them.
    let root = tmpdir("batch-obs");
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).expect("mk corpus");
    std::fs::write(corpus.join("r1.cfg"), "hostname r1\nrouter bgp 65001\n").expect("write");
    std::fs::write(corpus.join("metrics.json"), "{}").expect("write metrics");
    std::fs::write(corpus.join("old.trace.json"), "{\"traceEvents\":[]}").expect("write trace");

    let metrics = root.join("metrics.json");
    let out = bin()
        .args(["batch", "--secret", "s", "--jobs", "1"])
        .arg("--metrics")
        .arg(&metrics)
        .arg("--out-dir")
        .arg(root.join("out"))
        .arg(&corpus)
        .output()
        .expect("batch");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(
        stderr.contains("released 1 file(s)"),
        "exactly the one .cfg must be processed: {stderr}"
    );

    // And `confanon metrics` validates what batch wrote.
    let out = bin().arg("metrics").arg(&metrics).output().expect("metrics");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("confanon-metrics-v1"));

    // A torn/malformed metrics file is rejected.
    let bad = root.join("bad.json");
    std::fs::write(&bad, "{\"schema\": \"confanon-met").expect("write bad");
    let out = bin().arg("metrics").arg(&bad).output().expect("metrics");
    assert!(!out.status.success(), "malformed metrics must be rejected");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scan_flags_recorded_items() {
    let root = tmpdir("scan");
    let record = root.join("record.json");
    std::fs::write(
        &record,
        r#"{"asns": ["701"], "ips": ["1.1.1.1"], "words": ["uunet"]}"#,
    )
    .expect("write record");
    let dirty = root.join("dirty.cfg");
    std::fs::write(&dirty, "router bgp 701\nroute-map UUNET-in\n").expect("write cfg");
    let clean = root.join("clean.cfg");
    std::fs::write(&clean, "router bgp 9000\n").expect("write cfg");

    let out = bin()
        .args(["scan", "--record"])
        .arg(&record)
        .arg(&dirty)
        .output()
        .expect("run scan");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[701]"), "{stdout}");
    assert!(stdout.contains("[uunet]"), "{stdout}");

    let out = bin()
        .args(["scan", "--record"])
        .arg(&record)
        .arg(&clean)
        .output()
        .expect("run scan");
    assert!(out.status.success());
    let _ = std::fs::remove_dir_all(&root);
}

// ---- persistent state (`confanon-state-v1`): golden + negative paths --

/// The fixed corpus behind `tests/golden/state.json`. Regenerating the
/// golden: run `batch --secret golden-state-secret --jobs 1` with
/// `--state` over these two files and copy the resulting `state.json`.
fn write_golden_state_corpus(root: &Path) -> std::path::PathBuf {
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).expect("mk corpus");
    std::fs::write(
        corpus.join("edge1.cfg"),
        "hostname edge1.golden.example.com\n\
         router bgp 64801\n \
         neighbor 12.126.236.17 remote-as 701\n \
         neighbor 2001:db8:77::9 remote-as 1239\n\
         interface Ethernet0\n \
         ip address 192.168.41.5 255.255.255.0\n\
         ipv6 route 2001:db8:41::/48 2001:db8::5\n",
    )
    .expect("write edge1");
    std::fs::write(
        corpus.join("core9.cfg"),
        "hostname core9.golden.example.com\n\
         router bgp 64802\n \
         neighbor 12.126.236.17 remote-as 701\n\
         access-list 10 permit 172.22.9.0 0.0.0.255\n",
    )
    .expect("write core9");
    corpus
}

/// Runs `batch --state` over the golden corpus; returns the state dir.
fn golden_state_run(root: &Path, secret: &str) -> std::path::PathBuf {
    let corpus = write_golden_state_corpus(root);
    let st = root.join("st");
    let out = bin()
        .args(["batch", "--secret", secret, "--jobs", "1"])
        .arg("--state")
        .arg(&st)
        .arg("--out-dir")
        .arg(root.join("out"))
        .arg(&corpus)
        .output()
        .expect("run batch");
    assert!(
        out.status.success(),
        "golden corpus run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    st
}

#[test]
fn golden_state_document_is_stable() {
    // The checked-in golden both (a) loads byte-stably — parse then
    // re-serialize reproduces the exact file — and (b) is reproduced
    // byte-for-byte by a fresh run over its fixed corpus, so any drift
    // in serialization, mapping, or journal order is caught here.
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/state.json");
    let golden = std::fs::read(&golden_path).expect("read golden state");

    let text = String::from_utf8(golden.clone()).expect("golden is utf-8");
    let state = confanon::core::AnonState::from_json_str("golden", &text)
        .expect("golden state parses");
    assert_eq!(state.to_bytes(), golden, "golden must re-serialize identically");

    // Replay succeeds on a fresh anonymizer under the golden secret.
    let cfg = confanon::core::AnonymizerConfig::new(b"golden-state-secret".to_vec());
    let mut anon = confanon::core::Anonymizer::new(cfg);
    state
        .check_owner(
            "golden",
            &confanon::core::RunManifest::fingerprint(b"golden-state-secret"),
            &anon.perm_fingerprint(),
        )
        .expect("owner binding");
    state.restore_into("golden", &mut anon).expect("journal replays");

    let root = tmpdir("golden-state");
    let st = golden_state_run(&root, "golden-state-secret");
    assert_eq!(
        std::fs::read(st.join("state.json")).expect("read produced state"),
        golden,
        "a fresh run over the fixed corpus must reproduce the golden state"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn invalid_state_documents_refuse_with_exit_2() {
    let root = tmpdir("state-negative");
    let corpus = write_golden_state_corpus(&root);
    let st = golden_state_run(&root, "golden-state-secret");
    let state_text = std::fs::read_to_string(st.join("state.json")).expect("read state");

    // Each defect gets its own state dir, a fresh out dir, and must be
    // refused with exit 2 and its distinct error class on stderr.
    let run = |tag: &str, state_body: &str, secret: &str| -> (Option<i32>, String) {
        let sdir = root.join(format!("st-{tag}"));
        std::fs::create_dir_all(&sdir).expect("mk state dir");
        std::fs::write(sdir.join("state.json"), state_body).expect("write state");
        let out = bin()
            .args(["batch", "--secret", secret, "--jobs", "1"])
            .arg("--state")
            .arg(&sdir)
            .arg("--out-dir")
            .arg(root.join(format!("out-{tag}")))
            .arg(&corpus)
            .output()
            .expect("run batch");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };

    let (code, stderr) = run(
        "version",
        &state_text.replace("confanon-state-v1", "confanon-state-v99"),
        "golden-state-secret",
    );
    assert_eq!(code, Some(2), "version mismatch: {stderr}");
    assert!(stderr.contains("state version mismatch"), "{stderr}");

    let (code, stderr) = run("foreign", &state_text, "some-other-secret");
    assert_eq!(code, Some(2), "fingerprint mismatch: {stderr}");
    assert!(stderr.contains("state fingerprint mismatch"), "{stderr}");

    let (code, stderr) = run(
        "truncated",
        &state_text[..state_text.len() / 2],
        "golden-state-secret",
    );
    assert_eq!(code, Some(2), "truncation: {stderr}");
    assert!(stderr.contains("state corrupted"), "{stderr}");

    let (code, stderr) = run(
        "corrupt-journal",
        &state_text.replace("\"4:", "\"9:"),
        "golden-state-secret",
    );
    assert_eq!(code, Some(2), "corrupt journal: {stderr}");
    assert!(stderr.contains("state corrupted"), "{stderr}");

    // --state without --out-dir is a usage error before any work.
    let out = bin()
        .args(["batch", "--secret", "s", "--state"])
        .arg(root.join("st-nowhere"))
        .arg(&corpus)
        .output()
        .expect("run batch");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--state requires --out-dir"),
        "stderr should explain the missing --out-dir"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Satellite: the serve-mode exit-code taxonomy. Each failure class
/// gets its own code *and* its own unmistakable message, so automation
/// can branch on the code and operators can read the reason.
#[test]
fn serve_exit_codes_are_distinct() {
    let root = tmpdir("serve-exits");

    // Exit 7: config parse failure, with a line-numbered message.
    let bad = root.join("bad.toml");
    std::fs::write(&bad, "listen = \"127.0.0.1:0\"\nqueue_depth = \"deep\"\n").expect("write");
    let out = bin()
        .args(["serve", "--config"])
        .arg(&bad)
        .output()
        .expect("run serve");
    assert_eq!(out.status.code(), Some(7), "config parse failure");
    let config_err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(config_err.contains("invalid config"), "{config_err}");
    assert!(config_err.contains("line 2"), "{config_err}");

    // Exit 6: bind failure on an unroutable listen address.
    let good = root.join("good.toml");
    std::fs::write(
        &good,
        format!(
            "[tenant.alpha]\nsecret = \"s\"\nstate_dir = \"{}\"\n",
            root.join("state-alpha").display()
        ),
    )
    .expect("write");
    let out = bin()
        .args(["serve", "--config"])
        .arg(&good)
        .args(["--listen", "256.256.256.256:1"])
        .output()
        .expect("run serve");
    assert_eq!(out.status.code(), Some(6), "bind failure");
    let bind_err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(bind_err.contains("bind failed"), "{bind_err}");
    assert!(bind_err.contains("256.256.256.256:1"), "{bind_err}");

    // Exit 8: --require-clean-state refusal on a torn tenant state.
    let torn_dir = root.join("state-torn");
    std::fs::create_dir_all(&torn_dir).expect("mk state");
    std::fs::write(torn_dir.join("state.json"), b"{ torn").expect("write torn");
    let torn_cfg = root.join("torn.toml");
    std::fs::write(
        &torn_cfg,
        format!(
            "[tenant.alpha]\nsecret = \"s\"\nstate_dir = \"{}\"\n",
            torn_dir.display()
        ),
    )
    .expect("write");
    let out = bin()
        .args(["serve", "--config"])
        .arg(&torn_cfg)
        .args(["--listen", "127.0.0.1:0", "--require-clean-state"])
        .output()
        .expect("run serve");
    assert_eq!(out.status.code(), Some(8), "tenant-state refusal");
    let refusal = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(refusal.contains("state refused"), "{refusal}");
    assert!(refusal.contains("alpha"), "{refusal}");

    // Without --require-clean-state the same torn state is NOT a
    // startup failure — the tenant opens quarantined instead. Exits 0
    // after a shutdown frame (proven end-to-end in tests/serve.rs);
    // here we only assert the three failure messages are distinct.
    for (a, b) in [
        (&config_err, &bind_err),
        (&config_err, &refusal),
        (&bind_err, &refusal),
    ] {
        assert_ne!(a, b, "failure messages must be distinguishable");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// `confanon metrics --serve` validates the daemon's stats frame the
/// same way `metrics FILE` validates a batch metrics document.
#[test]
fn metrics_validates_serve_stats_frames() {
    let root = tmpdir("serve-metrics");
    let valid = root.join("frame.json");
    std::fs::write(
        &valid,
        r#"{"schema": "confanon-serve-metrics-v1",
            "tenants": {"alpha": {"health": "serving"}},
            "daemon": {"connections": 1,
                       "faults": {"frames_rejected": 0, "read_timeouts": 0,
                                  "idle_closed": 0, "connections_shed": 0,
                                  "recoveries": 0, "degraded_transitions": 0}}}"#,
    )
    .expect("write frame");
    let out = bin()
        .args(["metrics", "--serve"])
        .arg(&valid)
        .output()
        .expect("run metrics");
    assert!(out.status.success(), "valid frame must validate");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("confanon-serve-metrics-v1"),
        "stderr names the schema"
    );

    let invalid = root.join("bad-frame.json");
    std::fs::write(
        &invalid,
        r#"{"schema": "confanon-serve-metrics-v1",
            "tenants": {"alpha": {"requests": 3}},
            "daemon": {}}"#,
    )
    .expect("write frame");
    let out = bin()
        .args(["metrics", "--serve"])
        .arg(&invalid)
        .output()
        .expect("run metrics");
    assert_eq!(out.status.code(), Some(1), "healthless snapshot must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("health"),
        "stderr names the missing member"
    );

    // A frame predating the fault taxonomy (no daemon.faults) is now
    // rejected, and the error names the missing counter group.
    let faultless = root.join("faultless-frame.json");
    std::fs::write(
        &faultless,
        r#"{"schema": "confanon-serve-metrics-v1",
            "tenants": {"alpha": {"health": "serving"}},
            "daemon": {"connections": 1}}"#,
    )
    .expect("write frame");
    let out = bin()
        .args(["metrics", "--serve"])
        .arg(&faultless)
        .output()
        .expect("run metrics");
    assert_eq!(out.status.code(), Some(1), "faultless frame must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("faults"),
        "stderr names the missing fault object"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The netchaos proxy subcommand's usage/bind errors follow the same
/// exit-code taxonomy as serve.
#[test]
fn netchaos_usage_and_bind_errors() {
    let out = bin().args(["netchaos"]).output().expect("run netchaos");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--upstream"));

    let out = bin()
        .args(["netchaos", "--upstream", "127.0.0.1:1", "--profile", "mild"])
        .output()
        .expect("run netchaos");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown profile"));

    let out = bin()
        .args(["netchaos", "--upstream", "127.0.0.1:1", "--seed", "banana"])
        .output()
        .expect("run netchaos");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed"));
}

/// The client subcommand's usage errors are exit 2 like every other.
#[test]
fn client_usage_errors() {
    let out = bin().args(["client", "ping"]).output().expect("run client");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--endpoint"));

    let out = bin()
        .args(["client", "--endpoint", "127.0.0.1:1", "frobnicate"])
        .output()
        .expect("run client");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown action"));
}

/// The client's backoff knobs are validated before any connection is
/// attempted, so bad values are usage errors even with no daemon up.
#[test]
fn client_backoff_flag_validation() {
    for (flag, value) in [
        ("--backoff-base-ms", "0"),
        ("--backoff-cap-ms", "zero"),
        ("--backoff-seed", "banana"),
    ] {
        let out = bin()
            .args(["client", "--endpoint", "127.0.0.1:1", "anon"])
            .args(["--tenant", "alpha", flag, value])
            .output()
            .expect("run client");
        assert_eq!(out.status.code(), Some(2), "{flag} {value}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(flag.trim_start_matches("--")),
            "{flag}: stderr names the flag"
        );
    }
}

// ---- risk audit (`confanon-risk-v1`): golden + negative paths -------

/// The fixed two-network corpus behind `tests/golden/risk_report.json`.
/// Regenerating the golden: `batch --secret golden-audit-secret
/// --jobs 1 --out-dir OUT` over this corpus, then `audit --risk
/// --pre-dir CORPUS --post-dir OUT --secret golden-audit-secret
/// --decoys 1 --jobs 1` and copy the resulting `risk_report.json`.
fn write_audit_corpus(root: &Path) -> std::path::PathBuf {
    let corpus = root.join("corpus");
    for (name, body) in [
        (
            "alpha/edge1.cfg",
            "hostname edge1.alpha.example.com\n\
             router bgp 64801\n \
             neighbor 12.126.236.17 remote-as 701\n \
             neighbor 4.68.121.9 remote-as 3356\n \
             neighbor 203.181.248.27 remote-as 2914\n\
             interface Ethernet0\n \
             ip address 192.168.41.5 255.255.255.0\n\
             interface Serial1\n \
             ip address 10.40.7.2 255.255.255.252\n",
        ),
        (
            "alpha/core9.cfg",
            "hostname core9.alpha.example.com\n\
             router bgp 64801\n \
             neighbor 12.126.236.18 remote-as 1239\n \
             neighbor 192.205.32.109 remote-as 7018\n\
             interface Ethernet0\n \
             ip address 192.168.44.1 255.255.255.0\n\
             access-list 10 permit 172.22.9.0 0.0.0.255\n",
        ),
        (
            "beta/gw3.cfg",
            "hostname gw3.beta.example.net\n\
             router bgp 64702\n \
             neighbor 144.232.8.90 remote-as 1239\n \
             neighbor 195.219.0.5 remote-as 6453\n\
             interface FastEthernet0/0\n \
             ip address 172.19.3.1 255.255.252.0\n\
             interface FastEthernet0/1\n \
             ip address 172.19.8.1 255.255.255.128\n",
        ),
        (
            "beta/gw4.cfg",
            "hostname gw4.beta.example.net\n\
             router bgp 64702\n \
             neighbor 157.130.10.1 remote-as 701\n \
             neighbor 80.231.10.7 remote-as 1299\n\
             interface FastEthernet0/0\n \
             ip address 172.19.12.1 255.255.255.0\n",
        ),
    ] {
        let path = corpus.join(name);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mk net dir");
        std::fs::write(&path, body).expect("write cfg");
    }
    corpus
}

/// Runs batch then `audit --risk` over the fixed corpus; returns
/// (audit output, report path).
fn golden_audit_run(root: &Path) -> (std::process::Output, std::path::PathBuf) {
    let corpus = write_audit_corpus(root);
    let out_dir = root.join("out");
    let out = bin()
        .args(["batch", "--secret", "golden-audit-secret", "--jobs", "1"])
        .arg("--out-dir")
        .arg(&out_dir)
        .arg(&corpus)
        .output()
        .expect("run batch");
    assert!(
        out.status.success(),
        "golden corpus batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let audit = bin()
        .args(["audit", "--risk", "--secret", "golden-audit-secret"])
        .args(["--decoys", "1", "--jobs", "1"])
        .arg("--pre-dir")
        .arg(&corpus)
        .arg("--post-dir")
        .arg(&out_dir)
        .output()
        .expect("run audit");
    (audit, out_dir.join("risk_report.json"))
}

#[test]
fn golden_risk_report_is_byte_stable() {
    let root = tmpdir("golden-audit");
    let (audit, report_path) = golden_audit_run(&root);
    assert!(
        audit.status.success(),
        "audit failed: {}",
        String::from_utf8_lossy(&audit.stderr)
    );

    // The tradeoff table goes to stdout, one line per row, baseline
    // first — this is the greppable CI surface.
    let stdout = String::from_utf8_lossy(&audit.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines.first().is_some_and(|l| l.starts_with("tradeoff baseline ")),
        "{stdout}"
    );
    for label in ["disable:router-bgp-asn", "disable:neighbor-remote-as", "scramble", "decoys:1"] {
        assert!(
            lines.iter().any(|l| l.starts_with(&format!("tradeoff {label} "))),
            "missing tradeoff row {label}: {stdout}"
        );
    }

    // Byte-for-byte against the checked-in golden: any drift in attack
    // seeding, rate arithmetic, report serialization, or the
    // anonymizer itself is a diff to explain deliberately.
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/risk_report.json");
    let golden = std::fs::read(&golden_path).expect("read golden risk report");
    let produced = std::fs::read(&report_path).expect("read produced report");
    assert_eq!(
        produced,
        golden,
        "risk_report.json changed — if intentional, regenerate \
         tests/golden/risk_report.json and document the break"
    );

    // And the golden validates through the CLI checker.
    let check = bin()
        .args(["audit", "--check-report"])
        .arg(&golden_path)
        .output()
        .expect("run check-report");
    assert!(check.status.success(), "{}", String::from_utf8_lossy(&check.stderr));
    assert!(
        String::from_utf8_lossy(&check.stderr).contains("confanon-risk-v1"),
        "checker names the schema"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// `audit --risk` refuses a post-dir that is not an anonymized output
/// directory (no run manifest) with a usage error, not an I/O error:
/// scoring raw bytes as a release would produce nonsense numbers.
#[test]
fn audit_refuses_non_anonymized_post_dir() {
    let root = tmpdir("audit-refuse");
    let corpus = write_audit_corpus(&root);
    let out = bin()
        .args(["audit", "--risk", "--secret", "s"])
        .arg("--pre-dir")
        .arg(&corpus)
        .arg("--post-dir")
        .arg(&corpus)
        .output()
        .expect("run audit");
    assert_eq!(out.status.code(), Some(2), "non-anonymized post-dir");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not an anonymized output directory"),
        "stderr explains the refusal"
    );

    // Missing required flags are usage errors too.
    let out = bin().args(["audit"]).output().expect("run audit");
    assert_eq!(out.status.code(), Some(2), "bare audit");
    let out = bin()
        .args(["audit", "--risk"])
        .output()
        .expect("run audit");
    assert_eq!(out.status.code(), Some(2), "audit --risk without dirs");
    let _ = std::fs::remove_dir_all(&root);
}

/// `audit --check-report` rejects malformed reports: torn JSON, a
/// foreign schema, and internally inconsistent rates each fail with a
/// nonzero exit and a reason on stderr.
#[test]
fn audit_check_report_rejects_malformed_documents() {
    let root = tmpdir("audit-check");
    let golden = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/risk_report.json"),
    )
    .expect("read golden");

    let run = |tag: &str, body: &str| -> (Option<i32>, String) {
        let path = root.join(format!("{tag}.json"));
        std::fs::write(&path, body).expect("write report");
        let out = bin()
            .args(["audit", "--check-report"])
            .arg(&path)
            .output()
            .expect("run check-report");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };

    let (code, stderr) = run("torn", &golden[..golden.len() / 2]);
    assert_eq!(code, Some(1), "torn JSON: {stderr}");

    let (code, stderr) = run("schema", &golden.replace("confanon-risk-v1", "confanon-risk-v99"));
    assert_eq!(code, Some(1), "foreign schema: {stderr}");
    assert!(stderr.contains("schema"), "{stderr}");

    let (code, stderr) = run(
        "sections",
        &golden.replace("\"utility\": {", "\"utility_gone\": {"),
    );
    assert_eq!(code, Some(1), "missing utility section: {stderr}");
    assert!(stderr.contains("utility"), "{stderr}");

    // A missing file is an I/O error, not a validation failure.
    let out = bin()
        .args(["audit", "--check-report"])
        .arg(root.join("absent.json"))
        .output()
        .expect("run check-report");
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&root);
}

/// `batch --decoys N` appends chaff without perturbing real outputs:
/// every real released file is byte-identical to a decoy-free run, and
/// only decoys are flagged in the manifest.
#[test]
fn batch_decoys_leave_real_outputs_byte_identical() {
    let root = tmpdir("batch-decoys");
    let corpus = write_audit_corpus(&root);
    let plain_dir = root.join("plain");
    let chaff_dir = root.join("chaff");
    for (dir, extra) in [(&plain_dir, None), (&chaff_dir, Some(["--decoys", "2"]))] {
        let mut cmd = bin();
        cmd.args(["batch", "--secret", "decoy-cli-secret", "--jobs", "1"])
            .arg("--out-dir")
            .arg(dir)
            .arg(&corpus);
        if let Some(extra) = extra {
            cmd.args(extra);
        }
        let out = cmd.output().expect("run batch");
        assert!(
            out.status.success(),
            "batch failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let manifest = confanon::core::RunManifest::from_json_str(
        &std::fs::read_to_string(chaff_dir.join("run_manifest.json")).expect("read manifest"),
    )
    .expect("parse manifest");
    let decoys = manifest.decoy_names();
    assert_eq!(decoys.len(), 4, "2 decoys per network x 2 networks: {decoys:?}");
    assert!(
        decoys.iter().all(|n| n.contains("zz-decoy-")),
        "decoy names are the reserved chaff slots: {decoys:?}"
    );

    for f in &manifest.files {
        let chaffed = chaff_dir.join(format!("{}.anon", f.name));
        assert!(chaffed.is_file(), "{} must be released", f.name);
        if f.decoy {
            continue;
        }
        let plain = plain_dir.join(format!("{}.anon", f.name));
        assert_eq!(
            std::fs::read(&plain).expect("read plain"),
            std::fs::read(&chaffed).expect("read chaffed"),
            "{}: real output must not move when chaff is added",
            f.name
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
